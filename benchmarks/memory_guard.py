"""Memory-regression guard for streaming decompression.

Generates two Web traces whose lengths differ by ``--scale`` (default
4x), compresses both, then stream-decompresses each in a *fresh
subprocess* and records the child's peak RSS (``getrusage`` high-water
mark — the real number an operator sees, not just Python-heap
accounting).  The guard fails when peak RSS grows superlinearly-ish
with trace length: the streaming engine's whole contract is that its
working set tracks the concurrent-flow fan-out, so RSS growth must stay
well under the packet-count growth.

Run from the repository root (CI does)::

    PYTHONPATH=src python benchmarks/memory_guard.py

Exit status 0 = flat memory confirmed, 1 = regression, with the
measured numbers on stdout either way.  Pure stdlib — no pytest needed
— so the CI job stays dependency-free.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

DEFAULT_DURATION = 12.0
DEFAULT_SCALE = 4.0
DEFAULT_RATE = 40.0
SEED = 1

# RSS growth must stay under this fraction of the packet-count growth.
# Linear growth would track the packet ratio (1.0); the streaming
# engine's heap tracks concurrent flows, so even with the interpreter
# baseline subtracted out a wide margin below linear is expected.
GROWTH_FRACTION = 0.6


def _measure_child(compressed_path: str) -> None:
    """Child body: stream-decompress to /dev/null, report peak RSS."""
    import resource

    from repro.core.codec import deserialize_compressed
    from repro.core.replay import StreamingDecompressor
    from repro.trace.export import export_packet_stream

    compressed = deserialize_compressed(Path(compressed_path).read_bytes())
    engine = StreamingDecompressor(compressed)
    result = export_packet_stream(engine.packets(), os.devnull, format="tsh")
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        rss_kib //= 1024
    print(
        json.dumps(
            {
                "packets": result.packets,
                "peak_rss_kib": rss_kib,
                "peak_open_flows": engine.stats.peak_open_flows,
            }
        )
    )


def _run_child(compressed_path: Path) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    output = subprocess.run(
        [sys.executable, __file__, "--measure", str(compressed_path)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout
    return json.loads(output.splitlines()[-1])


def _build_compressed(directory: Path, duration: float, label: str) -> Path:
    from repro.core.codec import serialize_compressed
    from repro.core.compressor import compress_trace
    from repro.synth import generate_web_trace

    trace = generate_web_trace(duration=duration, flow_rate=DEFAULT_RATE, seed=SEED)
    path = directory / f"{label}.fctc"
    path.write_bytes(serialize_compressed(compress_trace(trace)))
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--measure", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args(argv)

    if args.measure is not None:
        _measure_child(args.measure)
        return 0

    with tempfile.TemporaryDirectory(prefix="memory-guard-") as tmp:
        directory = Path(tmp)
        small = _build_compressed(directory, args.duration, "small")
        large = _build_compressed(directory, args.duration * args.scale, "large")
        small_result = _run_child(small)
        large_result = _run_child(large)

    packet_growth = large_result["packets"] / small_result["packets"]
    rss_growth = large_result["peak_rss_kib"] / small_result["peak_rss_kib"]
    limit = max(1.0, GROWTH_FRACTION * packet_growth)
    print(
        f"packets     : {small_result['packets']} -> {large_result['packets']} "
        f"(x{packet_growth:.2f})"
    )
    print(
        f"peak RSS    : {small_result['peak_rss_kib']} KiB -> "
        f"{large_result['peak_rss_kib']} KiB (x{rss_growth:.2f}, limit x{limit:.2f})"
    )
    print(
        f"open flows  : {small_result['peak_open_flows']} -> "
        f"{large_result['peak_open_flows']}"
    )
    if rss_growth >= limit:
        print(
            "FAIL: streaming decompression peak RSS grows superlinearly "
            "with trace length"
        )
        return 1
    print("OK: streaming decompression memory is flat")
    return 0


if __name__ == "__main__":
    sys.exit(main())
