"""Memory-regression guard for the streaming paths.

Generates two Web traces whose lengths differ by ``--scale`` (default
4x), then measures each workload in a *fresh subprocess* and records
the child's peak RSS (``getrusage`` high-water mark — the real number
an operator sees, not just Python-heap accounting).  Two guarded paths:

* **Streaming decompression** — compress both traces, then
  stream-decompress each to ``/dev/null``.  The working set must track
  the concurrent-flow fan-out, not the packet count.
* **Serve ingest** — run the ``repro serve`` daemon over a ``tail:``
  source of each raw capture until every packet is ingested.  The
  daemon's memory is its bounded per-source queues plus one open
  segment per source, so peak RSS must likewise stay far under the
  packet-count growth.

Either guard fails when peak RSS grows superlinearly-ish with trace
length (RSS growth >= ``GROWTH_FRACTION`` of the packet growth).

Run from the repository root (CI does)::

    PYTHONPATH=src python benchmarks/memory_guard.py

Exit status 0 = flat memory confirmed, 1 = regression, with the
measured numbers on stdout either way.  Pure stdlib — no pytest needed
— so the CI job stays dependency-free.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

DEFAULT_DURATION = 12.0
DEFAULT_SCALE = 4.0
DEFAULT_RATE = 40.0
SEED = 1

# RSS growth must stay under this fraction of the packet-count growth.
# Linear growth would track the packet ratio (1.0); the streaming
# engine's heap tracks concurrent flows, so even with the interpreter
# baseline subtracted out a wide margin below linear is expected.
GROWTH_FRACTION = 0.6


def _measure_child(compressed_path: str) -> None:
    """Child body: stream-decompress to /dev/null, report peak RSS."""
    from repro.core.codec import deserialize_compressed
    from repro.core.replay import StreamingDecompressor
    from repro.trace.export import export_packet_stream

    compressed = deserialize_compressed(Path(compressed_path).read_bytes())
    engine = StreamingDecompressor(compressed)
    result = export_packet_stream(engine.packets(), os.devnull, format="tsh")
    rss_kib = _peak_rss_kib()
    print(
        json.dumps(
            {
                "packets": result.packets,
                "peak_rss_kib": rss_kib,
                "peak_open_flows": engine.stats.peak_open_flows,
            }
        )
    )


def _peak_rss_kib() -> int:
    import resource

    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        rss_kib //= 1024
    return rss_kib


def _measure_serve_child(tsh_path: str) -> None:
    """Child body: ingest a whole capture through the serve daemon."""
    from repro.api.options import ArchiveOptions, Options, ServeOptions
    from repro.serve.daemon import serve

    packets = os.path.getsize(tsh_path) // 44
    report = serve(
        tsh_path + ".fctca",
        Options(
            archive=ArchiveOptions(segment_packets=4096, segment_span=None),
            serve=ServeOptions(
                sources=(f"tail:{tsh_path}",),
                stop_after_packets=packets,
                tail_poll_seconds=0.01,
            ),
        ),
    )
    print(
        json.dumps(
            {
                "packets": report.packets,
                "peak_rss_kib": _peak_rss_kib(),
                "segments": report.segments,
            }
        )
    )


def _run_child(path: Path, mode: str = "--measure") -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    output = subprocess.run(
        [sys.executable, __file__, mode, str(path)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout
    return json.loads(output.splitlines()[-1])


def _build_compressed(directory: Path, duration: float, label: str) -> Path:
    from repro.core.codec import serialize_compressed
    from repro.core.compressor import compress_trace
    from repro.synth import generate_web_trace

    trace = generate_web_trace(duration=duration, flow_rate=DEFAULT_RATE, seed=SEED)
    path = directory / f"{label}.fctc"
    path.write_bytes(serialize_compressed(compress_trace(trace)))
    return path


def _build_tsh(directory: Path, duration: float, label: str) -> Path:
    from repro.synth import generate_web_trace

    trace = generate_web_trace(duration=duration, flow_rate=DEFAULT_RATE, seed=SEED)
    path = directory / f"{label}.tsh"
    trace.save_tsh(path)
    return path


def _check_growth(label: str, small_result: dict, large_result: dict) -> bool:
    packet_growth = large_result["packets"] / small_result["packets"]
    rss_growth = large_result["peak_rss_kib"] / small_result["peak_rss_kib"]
    limit = max(1.0, GROWTH_FRACTION * packet_growth)
    print(f"-- {label} --")
    print(
        f"packets     : {small_result['packets']} -> {large_result['packets']} "
        f"(x{packet_growth:.2f})"
    )
    print(
        f"peak RSS    : {small_result['peak_rss_kib']} KiB -> "
        f"{large_result['peak_rss_kib']} KiB (x{rss_growth:.2f}, limit x{limit:.2f})"
    )
    if rss_growth >= limit:
        print(f"FAIL: {label} peak RSS grows superlinearly with trace length")
        return False
    print(f"OK: {label} memory is flat")
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--measure", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--measure-serve", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    args = parser.parse_args(argv)

    if args.measure is not None:
        _measure_child(args.measure)
        return 0
    if args.measure_serve is not None:
        _measure_serve_child(args.measure_serve)
        return 0

    ok = True
    with tempfile.TemporaryDirectory(prefix="memory-guard-") as tmp:
        directory = Path(tmp)
        small = _build_compressed(directory, args.duration, "small")
        large = _build_compressed(directory, args.duration * args.scale, "large")
        small_result = _run_child(small)
        large_result = _run_child(large)
        print(
            f"open flows  : {small_result['peak_open_flows']} -> "
            f"{large_result['peak_open_flows']}"
        )
        ok &= _check_growth(
            "streaming decompression", small_result, large_result
        )

        small_tsh = _build_tsh(directory, args.duration, "small")
        large_tsh = _build_tsh(directory, args.duration * args.scale, "large")
        small_serve = _run_child(small_tsh, mode="--measure-serve")
        large_serve = _run_child(large_tsh, mode="--measure-serve")
        print(
            f"segments    : {small_serve['segments']} -> "
            f"{large_serve['segments']}"
        )
        ok &= _check_growth("serve ingest", small_serve, large_serve)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
