"""Shared benchmark fixtures: fixed workloads, built once per session."""

from __future__ import annotations

import pytest

from repro.core import roundtrip
from repro.experiments.common import ExperimentConfig
from repro.synth import generate_web_trace
from repro.trace.trace import Trace

BENCH_DURATION = 15.0
BENCH_FLOW_RATE = 40.0
BENCH_SEED = 1


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration all benches share."""
    return ExperimentConfig(
        duration=BENCH_DURATION, flow_rate=BENCH_FLOW_RATE, seed=BENCH_SEED,
        tolerance_scale=2.0,
    )


@pytest.fixture(scope="session")
def bench_trace() -> Trace:
    """A ~9k-packet Web trace."""
    return generate_web_trace(
        duration=BENCH_DURATION, flow_rate=BENCH_FLOW_RATE, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def bench_decompressed(bench_trace: Trace) -> Trace:
    """The decompressed twin of the benchmark trace."""
    decompressed, _report = roundtrip(bench_trace)
    return decompressed
