"""A1-A3 — the design-choice ablation sweeps from DESIGN.md."""

import pytest

from repro.experiments import ablation_cutoff, ablation_threshold, ablation_weights


@pytest.mark.benchmark(group="ablations")
def test_ablation_weights(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: ablation_weights.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed


@pytest.mark.benchmark(group="ablations")
def test_ablation_threshold(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: ablation_threshold.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed


@pytest.mark.benchmark(group="ablations")
def test_ablation_cutoff(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: ablation_cutoff.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
