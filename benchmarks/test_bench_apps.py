"""E6 / section 6 — the three benchmark applications (Route, NAT, RTR)."""

import pytest

from repro.experiments import apps
from repro.routing import NatApp, RtrApp


@pytest.mark.benchmark(group="apps")
class TestAppThroughput:
    def test_nat(self, benchmark, bench_trace):
        result = benchmark.pedantic(
            lambda: NatApp().run(bench_trace), rounds=2, iterations=1
        )
        assert result.packets_processed == len(bench_trace)

    def test_rtr(self, benchmark, bench_trace):
        result = benchmark.pedantic(
            lambda: RtrApp().run(bench_trace), rounds=2, iterations=1
        )
        assert result.packets_processed == len(bench_trace)


@pytest.mark.benchmark(group="apps")
def test_regenerate_apps_table(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: apps.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
