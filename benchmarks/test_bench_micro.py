"""Micro-benchmarks: the hot paths every experiment leans on."""

import random

import pytest

from repro.baselines.deflate import deflate_compress
from repro.baselines.lz77 import lz77_compress
from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.core.compressor import compress_trace
from repro.core.decompressor import decompress_trace
from repro.memsim.cache import CacheConfig, SetAssociativeCache
from repro.net.ip import IPv4Prefix
from repro.routing.radix import RadixTree
from repro.routing.table import RoutingTableConfig, build_routing_table
from repro.trace.tsh import read_tsh_bytes, write_tsh_bytes


@pytest.mark.benchmark(group="micro-core")
class TestCorePipeline:
    def test_compress_throughput(self, benchmark, bench_trace):
        compressed = benchmark.pedantic(
            lambda: compress_trace(bench_trace), rounds=3, iterations=1
        )
        assert compressed.flow_count() > 0

    def test_decompress_throughput(self, benchmark, bench_trace):
        compressed = compress_trace(bench_trace)
        trace = benchmark.pedantic(
            lambda: decompress_trace(compressed), rounds=3, iterations=1
        )
        assert len(trace) == len(bench_trace)

    def test_serialize(self, benchmark, bench_trace):
        compressed = compress_trace(bench_trace)
        data = benchmark(lambda: serialize_compressed(compressed))
        assert len(data) > 0

    def test_deserialize(self, benchmark, bench_trace):
        data = serialize_compressed(compress_trace(bench_trace))
        restored = benchmark(lambda: deserialize_compressed(data))
        assert restored.flow_count() > 0


@pytest.mark.benchmark(group="micro-tsh")
class TestTshCodec:
    def test_encode(self, benchmark, bench_trace):
        data = benchmark.pedantic(
            lambda: write_tsh_bytes(bench_trace.packets), rounds=3, iterations=1
        )
        assert len(data) == 44 * len(bench_trace)

    def test_decode(self, benchmark, bench_trace):
        data = write_tsh_bytes(bench_trace.packets)
        packets = benchmark.pedantic(
            lambda: read_tsh_bytes(data), rounds=3, iterations=1
        )
        assert len(packets) == len(bench_trace)


@pytest.mark.benchmark(group="micro-radix")
class TestRadix:
    def test_lookup_rate(self, benchmark):
        tree = build_routing_table(RoutingTableConfig(background_routes=2000))
        rng = random.Random(5)
        addresses = [rng.getrandbits(32) for _ in range(2000)]

        def lookups():
            return sum(1 for a in addresses if tree.lookup(a) is not None)

        matched = benchmark(lookups)
        assert 0 <= matched <= len(addresses)

    def test_insert_rate(self, benchmark):
        rng = random.Random(6)
        prefixes = [
            (IPv4Prefix(rng.getrandbits(32) & 0xFFFFFF00, 24), rng.randrange(16))
            for _ in range(500)
        ]

        def build():
            tree = RadixTree()
            for prefix, hop in prefixes:
                tree.insert(prefix, hop)
            return tree

        tree = benchmark(build)
        assert tree.entry_count > 0


@pytest.mark.benchmark(group="micro-cache")
def test_cache_access_rate(benchmark):
    rng = random.Random(7)
    addresses = [rng.randrange(1 << 20) for _ in range(20000)]

    def replay():
        cache = SetAssociativeCache(CacheConfig())
        cache.replay(addresses)
        return cache.stats.misses

    misses = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert misses > 0


@pytest.mark.benchmark(group="micro-deflate")
class TestDeflatePipeline:
    def test_lz77_throughput(self, benchmark, bench_trace):
        data = write_tsh_bytes(bench_trace.packets[:2000])
        tokens = benchmark.pedantic(
            lambda: lz77_compress(data), rounds=2, iterations=1
        )
        assert tokens

    def test_deflate_throughput(self, benchmark, bench_trace):
        data = write_tsh_bytes(bench_trace.packets[:2000])
        compressed = benchmark.pedantic(
            lambda: deflate_compress(data), rounds=2, iterations=1
        )
        assert len(compressed) < len(data)
