"""Benchmarks: per-scenario compression and fidelity floors.

The scenario zoo exists to keep the compressor honest on traffic it was
not tuned for.  This module runs the differential fidelity harness
(:mod:`repro.analysis.fidelity`) over every registered scenario and
asserts the conservative per-scenario bounds in
``BENCH_scenarios.json``:

* **ratio** — compressed container bytes / TSH bytes must stay under a
  ceiling ~2x the authoring-time measurement, so a dataset silently
  growing (or a section losing its encoding) fails CI on the workload
  that exposes it, not just on ``web``;
* **complexity drift** — the roundtrip's interarrival-entropy and
  temporal-complexity drift must stay under ceilings ~2x the measured
  drift (the reconstruction is a statistical twin, not a copy, so the
  bound is a leash rather than zero);
* **flow populations** — the KS distance between original and
  reconstructed per-flow packet-count distributions must be exactly
  the pinned value (0.0): flow sizes are part of what the codec stores
  losslessly.

A scenario added to the registry without floors here fails the
coverage test below — pinning its numbers is part of landing it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.fidelity import evaluate_scenario
from repro.synth.scenarios import scenario_names

BASELINE = json.loads(
    (Path(__file__).resolve().parent / "BENCH_scenarios.json").read_text()
)
DURATION = BASELINE["workload"]["duration"]
FLOW_RATE = BASELINE["workload"]["flow_rate"]


@pytest.fixture(scope="module")
def scores():
    return {
        name: evaluate_scenario(
            name, duration=DURATION, flow_rate=FLOW_RATE
        )
        for name in scenario_names()
    }


def test_every_registered_scenario_has_pinned_floors():
    for table in ("max_ratio", "max_entropy_delta", "max_temporal_delta"):
        assert set(BASELINE[table]) == set(scenario_names()), table


@pytest.mark.parametrize("name", scenario_names())
def test_compression_ratio_floor(scores, name):
    score = scores[name]
    assert score.packets > 0
    assert score.ratio <= BASELINE["max_ratio"][name], (
        f"{name}: ratio {score.ratio:.4f} above pinned "
        f"{BASELINE['max_ratio'][name]} — the container grew"
    )


@pytest.mark.parametrize("name", scenario_names())
def test_complexity_drift_ceilings(scores, name):
    score = scores[name]
    assert score.entropy_delta <= BASELINE["max_entropy_delta"][name], (
        f"{name}: interarrival-entropy drift {score.entropy_delta:.3f} "
        f"above pinned {BASELINE['max_entropy_delta'][name]}"
    )
    assert score.temporal_delta <= BASELINE["max_temporal_delta"][name], (
        f"{name}: temporal-complexity drift {score.temporal_delta:.3f} "
        f"above pinned {BASELINE['max_temporal_delta'][name]}"
    )


@pytest.mark.parametrize("name", scenario_names())
def test_flow_populations_preserved_exactly(scores, name):
    assert scores[name].flow_size_ks == BASELINE["max_flow_size_ks"], (
        f"{name}: flow-size KS {scores[name].flow_size_ks} != "
        f"{BASELINE['max_flow_size_ks']} — per-flow packet counts "
        "are stored losslessly; this is a correctness bug"
    )
