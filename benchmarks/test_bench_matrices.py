"""Benchmarks: traffic-matrix statistics vs. full decompression.

The analytics subsystem's reason to exist is that ``repro stats``
should not pay for packet synthesis.  Three claims are pinned against
``BENCH_matrices.json``:

* **Faster** — the index fast path (flow metadata, one RNG draw per
  flow) must beat the decode baseline (synthesize every packet, fold
  back down) by at least ``min_speedup`` on **identical** window
  tables, so fast-but-wrong fails the same test that times it.
* **Less work on a bounded range** — a ``[since, until]`` request must
  let the footer index prune segments the decode baseline still pays
  for, again with identical windows.
* **Flat memory** — the streaming aggregator holds one window at a
  time, so shrinking the window (more windows over the same archive)
  must not grow the tracemalloc peak beyond ``max_peak_ratio``.
"""

from __future__ import annotations

import dataclasses
import json
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.analysis.matrices import matrix_report_for_archive, scipy_or_none
from repro.api import ArchiveOptions, Options, create_archive
from repro.archive import ArchiveReader
from repro.synth.scenarios import get_scenario

BASELINE = json.loads(
    (Path(__file__).resolve().parent / "BENCH_matrices.json").read_text()
)
WORKLOAD = BASELINE["workload"]


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-matrices") / "bench.fctca"
    trace = get_scenario(WORKLOAD["scenario"]).build(
        duration=WORKLOAD["duration"],
        flow_rate=WORKLOAD["flow_rate"],
        seed=WORKLOAD["seed"],
    )
    options = dataclasses.replace(
        Options(), archive=ArchiveOptions(segment_span=WORKLOAD["segment_span"])
    )
    report = create_archive(path, trace.packets, options=options)
    assert report.segments_total >= 8, "benchmark needs a multi-segment archive"
    return path


def _report(path, method, **bounds):
    with ArchiveReader(path) as reader:
        return matrix_report_for_archive(
            reader, window=WORKLOAD["window"], method=method, **bounds
        )


def _best_of(worker, rounds: int = 3) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        worker()
        samples.append(time.perf_counter() - start)
    return min(samples)


class TestIndexPathSavesWork:
    def test_identical_windows_for_a_fraction_of_the_time(self, archive_path):
        scipy_or_none()  # keep the import out of the first timed round
        by_index = _report(archive_path, "index")
        by_decode = _report(archive_path, "decode")
        # Identity first: the speedup only counts if the answer matches.
        assert by_index.windows == by_decode.windows
        assert by_index.flows == by_decode.flows > 0

        index = _best_of(lambda: _report(archive_path, "index"))
        decode = _best_of(lambda: _report(archive_path, "decode"))
        speedup = decode / index
        print(
            f"\nindex {index * 1e3:.1f} ms vs decode {decode * 1e3:.1f} ms "
            f"({speedup:.1f}x, floor {BASELINE['min_speedup']}x)"
        )
        assert speedup >= BASELINE["min_speedup"]

    def test_bounded_range_prunes_segments(self, archive_path):
        bounds = dict(since=8.0, until=16.0)
        by_index = _report(archive_path, "index", **bounds)
        by_decode = _report(archive_path, "decode", **bounds)
        assert by_index.windows == by_decode.windows
        assert by_index.flows > 0
        # The index pruned; the baseline paid for every segment.
        assert by_index.segments_pruned > 0
        assert by_index.segments_decoded < by_decode.segments_decoded
        assert by_decode.segments_decoded == by_decode.segments_total


class TestStreamingMemory:
    def test_peak_is_flat_across_window_counts(self, archive_path):
        def peak_for(window: float) -> tuple[int, int]:
            def run():
                with ArchiveReader(archive_path) as reader:
                    return matrix_report_for_archive(
                        reader, window=window, method="index"
                    )

            run()  # warm caches so neither measurement pays first-run costs
            tracemalloc.start()
            report = run()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak, len(report.windows)

        peak_few, count_few = peak_for(WORKLOAD["duration"] / 3)
        peak_many, count_many = peak_for(WORKLOAD["segment_span"] / 8)
        print(
            f"\npeak {peak_few / 1024:.0f} KiB @ {count_few} windows vs "
            f"{peak_many / 1024:.0f} KiB @ {count_many} windows"
        )
        assert count_many > count_few * 8
        assert peak_many <= peak_few * BASELINE["max_peak_ratio"]
