"""E2 / section 3 statistics — flow-statistics computation benchmark."""

import pytest

from repro.experiments import flowstats
from repro.trace.stats import compute_statistics


@pytest.mark.benchmark(group="flowstats")
def test_compute_statistics_throughput(benchmark, bench_trace):
    stats = benchmark(compute_statistics, bench_trace)
    assert stats.packet_count == len(bench_trace)
    assert stats.short_flow_fraction > 0.9


@pytest.mark.benchmark(group="flowstats")
def test_regenerate_flowstats_table(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: flowstats.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
