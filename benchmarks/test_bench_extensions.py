"""E7-E9 — the extension experiments (P2P, anonymization, generator)."""

import pytest

from repro.core import TraceModel, compress_trace
from repro.experiments import anonymization, generator_study, p2p
from repro.synth import generate_p2p_trace
from repro.trace.anonymize import anonymize_prefix_preserving


@pytest.mark.benchmark(group="extensions")
def test_p2p_generation_throughput(benchmark):
    trace = benchmark.pedantic(
        lambda: generate_p2p_trace(duration=10, session_rate=6, seed=1),
        rounds=2,
        iterations=1,
    )
    assert len(trace) > 0


@pytest.mark.benchmark(group="extensions")
def test_anonymization_throughput(benchmark, bench_trace):
    anonymized = benchmark.pedantic(
        lambda: anonymize_prefix_preserving(bench_trace),
        rounds=2,
        iterations=1,
    )
    assert len(anonymized) == len(bench_trace)


@pytest.mark.benchmark(group="extensions")
def test_model_synthesis_throughput(benchmark, bench_trace):
    model = TraceModel.fit(compress_trace(bench_trace))

    def synthesize():
        return model.synthesize(flow_count=500, seed=1)

    trace = benchmark.pedantic(synthesize, rounds=2, iterations=1)
    assert len(trace) > 0


@pytest.mark.benchmark(group="extensions")
def test_regenerate_p2p_table(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: p2p.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed


@pytest.mark.benchmark(group="extensions")
def test_regenerate_anonymization_table(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: anonymization.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed


@pytest.mark.benchmark(group="extensions")
def test_regenerate_generator_table(benchmark, bench_config, capsys):
    result = benchmark.pedantic(
        lambda: generator_study.run(bench_config), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    assert result.passed
