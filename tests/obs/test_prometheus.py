"""Prometheus text-exposition rendering."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import metric_name, render_prometheus


def test_metric_name_sanitizes():
    assert metric_name("stream.packets") == "repro_stream_packets"
    assert metric_name("weird-name!", namespace="x") == "x_weird_name_"


def test_empty_registry_renders_empty():
    assert render_prometheus(MetricsRegistry()) == ""


def test_counter_gauge_rendering():
    registry = MetricsRegistry()
    registry.counter("a.hits", "hit count").inc(3)
    registry.gauge("a.depth", "queue depth").set(2.0)
    text = render_prometheus(registry)
    assert "# TYPE repro_a_depth gauge" in text
    assert "repro_a_depth 2" in text
    assert "# TYPE repro_a_hits_total counter" in text
    assert "# HELP repro_a_hits_total hit count" in text
    assert "repro_a_hits_total 3" in text
    assert text.endswith("\n")


def test_timer_renders_two_series():
    registry = MetricsRegistry()
    registry.timer("stage.decode").observe(0.25)
    text = render_prometheus(registry)
    assert "repro_stage_decode_seconds_total 0.25" in text
    assert "repro_stage_decode_calls_total 1" in text


def test_histogram_renders_native_shape():
    registry = MetricsRegistry()
    histogram = registry.histogram("h", bounds=(1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(5.0)
    text = render_prometheus(registry)
    assert 'repro_h_bucket{le="1"} 1' in text
    assert 'repro_h_bucket{le="10"} 2' in text
    assert 'repro_h_bucket{le="+Inf"} 2' in text
    assert "repro_h_sum 5.5" in text
    assert "repro_h_count 2" in text
