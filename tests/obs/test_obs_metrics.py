"""Unit tests for the metric primitives and the registry."""

import pickle
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    current,
    get_registry,
    scoped,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_restore_adds(self):
        counter = Counter("c")
        counter.inc(5)
        counter.restore(7)
        assert counter.value == 12


class TestGauge:
    def test_set_and_arithmetic(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0

    def test_set_max_only_raises(self):
        gauge = Gauge("g")
        gauge.set_max(10.0)
        gauge.set_max(3.0)
        assert gauge.value == 10.0

    def test_restore_keeps_maximum(self):
        gauge = Gauge("g")
        gauge.set(8.0)
        gauge.restore(5.0)
        assert gauge.value == 8.0
        gauge.restore(11.0)
        assert gauge.value == 11.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 555.5
        buckets = dict(histogram.buckets())
        assert buckets[1.0] == 1
        assert buckets[10.0] == 2
        assert buckets[100.0] == 3
        assert buckets[float("inf")] == 4

    def test_implicit_inf_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        assert histogram.bounds[-1] == float("inf")

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10.0, 1.0))

    def test_restore_requires_matching_bounds(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        other = Histogram("h", bounds=(5.0, 6.0))
        with pytest.raises(ValueError):
            histogram.restore(other.state())

    def test_default_buckets(self):
        assert Histogram("h").bounds == DEFAULT_BUCKETS


class TestTimer:
    def test_observe_tracks_count_total_extrema(self):
        timer = Timer("t")
        timer.observe(2.0)
        timer.observe(1.0)
        timer.observe(4.0)
        assert timer.count == 3
        assert timer.total_seconds == 7.0
        assert timer.min_seconds == 1.0
        assert timer.max_seconds == 4.0

    def test_min_is_zero_before_any_observation(self):
        assert Timer("t").min_seconds == 0.0

    def test_time_context_manager_records_elapsed(self):
        timer = Timer("t")
        with timer.time() as stage:
            pass
        assert timer.count == 1
        assert stage.elapsed >= 0.0
        assert timer.total_seconds == pytest.approx(stage.elapsed)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_iteration_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert [metric.name for metric in registry] == ["a", "b"]

    def test_value_lookup_with_default(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        assert registry.value("a") == 3
        assert registry.value("missing", default=-1) == -1

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc(100)
        registry.gauge("g").set(5.0)
        registry.histogram("h").observe(1.0)
        with registry.timer("t").time():
            pass
        assert len(registry) == 0
        assert registry.snapshot().metrics == {}

    def test_thread_safe_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000


class TestSnapshotMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(10)
        registry.gauge("g").set_max(7.0)
        registry.histogram("h", bounds=(1.0, 10.0)).observe(5.0)
        registry.timer("t").observe(2.0)
        return registry

    def test_snapshot_is_picklable(self):
        snapshot = self._populated().snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.metrics == snapshot.metrics

    def test_merge_accumulates_counters_histograms_timers(self):
        parent = self._populated()
        parent.merge(self._populated().snapshot())
        assert parent.value("c") == 20
        histogram = parent.get("h")
        assert histogram.count == 2
        assert histogram.sum == 10.0
        timer = parent.get("t")
        assert timer.count == 2
        assert timer.total_seconds == 4.0

    def test_merge_keeps_gauge_maximum(self):
        parent = self._populated()
        worker = MetricsRegistry()
        worker.gauge("g").set_max(3.0)
        parent.merge(worker.snapshot())
        assert parent.value("g") == 7.0
        worker.gauge("g").set_max(99.0)
        parent.merge(worker.snapshot())
        assert parent.value("g") == 99.0

    def test_merge_creates_missing_metrics(self):
        parent = MetricsRegistry()
        parent.merge(self._populated().snapshot())
        assert parent.value("c") == 10

    def test_counters_helper(self):
        snapshot = self._populated().snapshot()
        assert snapshot.counters() == {"c": 10}


class TestScoping:
    def test_default_is_process_registry(self):
        assert current() is get_registry()

    def test_scoped_registry_wins_and_unwinds(self):
        registry = MetricsRegistry()
        with scoped(registry) as installed:
            assert installed is registry
            assert current() is registry
            inner = MetricsRegistry()
            with scoped(inner):
                assert current() is inner
            assert current() is registry
        assert current() is get_registry()

    def test_scoped_none_disables(self):
        with scoped(None) as registry:
            assert not registry.enabled
            current().counter("nope").inc()
            assert len(registry) == 0
