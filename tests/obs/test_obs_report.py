"""RunReport document-shape stability and the record_run wrapper.

The JSON document is a contract: dashboards and the future ingest
daemon parse these files, so the top-level keys and their value types
must never change within schema v1.
"""

import json

from repro.obs import (
    RUN_REPORT_SCHEMA,
    RunReport,
    current,
    get_registry,
    record_run,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import SCHEMA


def _one_of_each() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("c", "a counter").inc(3)
    registry.gauge("g", "a gauge").set(4.5)
    registry.timer("t", "a timer").observe(0.25)
    registry.histogram("h", "a histogram", bounds=(1.0, 10.0)).observe(5.0)
    return registry


def _report() -> RunReport:
    return RunReport.from_registry(
        _one_of_each(),
        command="test",
        started_at=1700000000.0,
        duration_seconds=0.5,
        meta={"source": "a.tsh"},
    )


class TestSchemaStability:
    def test_document_matches_pinned_schema(self):
        document = _report().to_dict()
        assert set(document) == set(RUN_REPORT_SCHEMA)
        for key, expected_type in RUN_REPORT_SCHEMA.items():
            assert isinstance(document[key], expected_type), key

    def test_schema_marker(self):
        assert _report().to_dict()["schema"] == SCHEMA == "repro.obs/run-report/v1"

    def test_value_shapes(self):
        document = _report().to_dict()
        assert document["counters"] == {"c": 3}
        assert document["gauges"] == {"g": 4.5}
        timer = document["timers"]["t"]
        assert set(timer) == {
            "count", "total_seconds", "min_seconds", "max_seconds",
        }
        histogram = document["histograms"]["h"]
        assert set(histogram) == {"count", "sum", "buckets"}
        assert histogram["buckets"] == {"1.0": 0, "10.0": 1, "+Inf": 1}

    def test_json_round_trip(self):
        report = _report()
        clone = RunReport.from_dict(json.loads(report.to_json()))
        assert clone.to_dict() == report.to_dict()

    def test_write_reads_back(self, tmp_path):
        path = _report().write(tmp_path / "run.json")
        document = json.loads(path.read_text())
        assert document["command"] == "test"
        assert document["meta"] == {"source": "a.tsh"}


class TestSummaryLines:
    def test_covers_every_metric(self):
        lines = _report().summary_lines()
        text = "\n".join(lines)
        assert lines[0].startswith("-- metrics: test")
        for name in ("c", "g", "t", "h"):
            assert any(line.startswith(name) for line in lines[1:]), name
        assert "500.0 ms" in text


class TestRecordRun:
    def test_scopes_a_private_registry(self):
        before = get_registry().value("recorded.inside", default=0)
        with record_run("probe") as run:
            assert current() is run.registry
            current().counter("recorded.inside").inc(9)
        assert run.report.counters == {"recorded.inside": 9}
        assert run.report.command == "probe"
        assert run.report.duration_seconds >= 0.0
        assert get_registry().value("recorded.inside", default=0) == before

    def test_meta_appendable_until_exit(self):
        with record_run("probe", meta={"a": 1}) as run:
            run.meta["b"] = 2
        assert run.report.meta == {"a": 1, "b": 2}
