"""End-to-end instrumentation accuracy.

The acceptance bar for the observability PR: semantic counters must
match the trace's ground truth exactly, identically for the scalar and
columnar engines, and multiprocessing snapshots merged at join must
equal a single-process run's totals.
"""

import pytest

from repro import api
from repro.core.columnar import ENGINE_COLUMNAR, ENGINE_SCALAR
from repro.core.streaming import compress_tsh_file, compress_tsh_file_parallel
from repro.obs import RunReport, scoped
from repro.obs.metrics import MetricsRegistry
from repro.synth import generate_web_trace
from repro.trace.tsh import TSH_RECORD_BYTES

# Counters whose totals are engine- and sharding-independent facts about
# the input.  Template hits/misses are *engine*-independent but not
# shard-independent (each shard clusters locally), so the parallel test
# checks a smaller set.
SEMANTIC = (
    "trace.read.bytes",
    "trace.read.records",
    "compress.packets",
    "compress.flows",
    "compress.flows.short",
    "compress.flows.long",
    "compress.template.hits",
    "compress.template.misses",
    "compress.evictions",
    "stream.chunks",
)
SHARDING_INDEPENDENT = (
    "compress.packets",
    "compress.flows",
    "compress.flows.short",
    "compress.flows.long",
)


@pytest.fixture(scope="module")
def web_tsh(tmp_path_factory):
    trace = generate_web_trace(duration=8.0, flow_rate=25.0, seed=11)
    path = tmp_path_factory.mktemp("obs") / "web.tsh"
    trace.save_tsh(path)
    return path, trace


def _counters(path, *, engine, chunk_size=256):
    registry = MetricsRegistry()
    with scoped(registry):
        compressor = compress_tsh_file(path, chunk_size=chunk_size, engine=engine)
    return registry, compressor


class TestGroundTruth:
    def test_counters_match_trace_exactly(self, web_tsh):
        path, trace = web_tsh
        registry, compressor = _counters(path, engine=ENGINE_SCALAR)
        stats = compressor.stats
        assert registry.value("trace.read.records") == len(trace)
        assert registry.value("trace.read.bytes") == len(trace) * TSH_RECORD_BYTES
        assert registry.value("compress.packets") == len(trace)
        assert registry.value("compress.flows") == stats.flows_closed
        assert (
            registry.value("compress.flows.short")
            + registry.value("compress.flows.long")
            == stats.flows_closed
        )
        assert registry.value("stream.engine.scalar") == 1
        assert registry.value("stream.active_flows.peak") == (
            compressor.streaming_stats.peak_active_flows
        )

    def test_stage_timers_recorded(self, web_tsh):
        path, _ = web_tsh
        registry, _ = _counters(path, engine=ENGINE_SCALAR, chunk_size=128)
        for stage in ("stage.decode", "stage.cluster"):
            timer = registry.get(stage)
            assert timer is not None and timer.count > 0


class TestEngineParity:
    def test_semantic_counters_identical(self, web_tsh):
        path, _ = web_tsh
        scalar, _ = _counters(path, engine=ENGINE_SCALAR)
        columnar, _ = _counters(path, engine=ENGINE_COLUMNAR)
        for name in SEMANTIC:
            assert scalar.value(name) == columnar.value(name), name
        assert scalar.value("stream.engine.scalar") == 1
        assert columnar.value("stream.engine.columnar") == 1
        chunk_histogram = columnar.get("columnar.chunk_packets")
        assert chunk_histogram is not None
        assert chunk_histogram.sum == scalar.value("compress.packets")


class TestParallelMerge:
    def test_merged_snapshots_equal_single_process(self, web_tsh):
        # The synthetic workload is idle-eviction-free (64 s timeout vs
        # an 8 s trace), so flow totals are exactly shard-independent.
        path, _ = web_tsh
        single, _ = _counters(path, engine=ENGINE_SCALAR)
        parallel = MetricsRegistry()
        with scoped(parallel):
            compress_tsh_file_parallel(path, 2)
        for name in SHARDING_INDEPENDENT:
            assert parallel.value(name) == single.value(name), name
        assert parallel.value("compress.evictions") == 0
        # Each worker reads the whole file and keeps its residue class,
        # so read counters scale with the worker count by design.
        assert parallel.value("trace.read.records") == (
            2 * single.value("trace.read.records")
        )
        # Both shard snapshots arrived: shard hit+miss totals cover every
        # short flow even though the hit/miss split differs from
        # single-process (each shard clusters locally).
        assert (
            parallel.value("compress.template.hits")
            + parallel.value("compress.template.misses")
            == single.value("compress.flows.short")
        )


class TestFacadeExposure:
    def test_report_true_returns_run_report(self, tmp_path, web_tsh):
        path, trace = web_tsh
        with api.open(path) as store:
            report = store.compress(tmp_path / "out.fctc", report=True)
        assert isinstance(report, RunReport)
        assert report.command == "compress"
        assert report.counters["compress.packets"] == len(trace)
        assert report.meta["source"] == str(path)

    def test_metrics_false_leaves_default_registry_untouched(
        self, tmp_path, web_tsh
    ):
        from repro.obs import get_registry

        path, _ = web_tsh
        options = api.Options(metrics=False)
        before = get_registry().value("compress.packets", default=0)
        with api.open(path, options=options) as store:
            store.compress(tmp_path / "out2.fctc")
        assert get_registry().value("compress.packets", default=0) == before
