"""Unit: predicate semantics and index conservativeness."""

import random

import pytest

from repro.archive.format import AddressSummary, SegmentIndexEntry
from repro.core.codec import quantize_rtt, quantize_timestamp
from repro.core.datasets import DatasetId
from repro.query.engine import FlowSummary
from repro.query.predicates import (
    DestinationAddress,
    DestinationPrefix,
    FlowKind,
    MatchAll,
    PacketCountRange,
    RttRange,
    TimeRange,
)


def flow(
    timestamp=5.0,
    kind=DatasetId.SHORT,
    packets=4,
    destination=0xC0A80050,
    rtt=0.05,
) -> FlowSummary:
    return FlowSummary(
        segment=0,
        timestamp=timestamp,
        kind=kind,
        template_index=0,
        packet_count=packets,
        destination=destination,
        rtt=rtt,
    )


def entry(
    time_range=(0.0, 10.0),
    flows=(3, 2),  # (short, long)
    packets=(2, 80),
    rtts=(0.0, 0.2),
    addresses=(0xC0A80050, 0x0A000001),
) -> SegmentIndexEntry:
    return SegmentIndexEntry(
        offset=16,
        length=100,
        time_min_units=quantize_timestamp(time_range[0]),
        time_max_units=quantize_timestamp(time_range[1]),
        flow_count=flows[0] + flows[1],
        short_flow_count=flows[0],
        packet_count=100,
        min_flow_packets=packets[0],
        max_flow_packets=packets[1],
        min_rtt_units=quantize_rtt(rtts[0]),
        max_rtt_units=quantize_rtt(rtts[1]),
        address_count=len(addresses),
        summary=AddressSummary.build(addresses),
    )


class TestTimeRange:
    def test_flow_bounds_inclusive(self):
        predicate = TimeRange(1.0, 2.0)
        assert predicate.match_flow(flow(timestamp=1.0))
        assert predicate.match_flow(flow(timestamp=2.0))
        assert not predicate.match_flow(flow(timestamp=2.0001))

    def test_segment_overlap(self):
        predicate = TimeRange(10.0, 20.0)
        assert not predicate.match_segment(entry(time_range=(0.0, 9.9)))
        assert not predicate.match_segment(entry(time_range=(20.1, 30.0)))
        assert predicate.match_segment(entry(time_range=(5.0, 10.0)))
        assert predicate.match_segment(entry(time_range=(20.0, 25.0)))

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError, match="empty time range"):
            TimeRange(2.0, 1.0)


class TestDestination:
    def test_exact_address(self):
        predicate = DestinationAddress("192.168.0.80")
        assert predicate.match_flow(flow(destination=0xC0A80050))
        assert not predicate.match_flow(flow(destination=0xC0A80051))
        assert predicate.match_segment(entry())
        assert not predicate.match_segment(entry(addresses=(0x0A000001,)))

    def test_prefix(self):
        predicate = DestinationPrefix("192.168.0.0/16")
        assert predicate.match_flow(flow(destination=0xC0A80050))
        assert not predicate.match_flow(flow(destination=0x0A000001))
        assert predicate.match_segment(entry())
        assert not predicate.match_segment(entry(addresses=(0x0A000001,)))


class TestKindAndCounts:
    def test_flow_kind(self):
        assert FlowKind("short").match_flow(flow(kind=DatasetId.SHORT))
        assert FlowKind("long").match_flow(flow(kind=DatasetId.LONG))
        assert not FlowKind("long").match_segment(entry(flows=(3, 0)))
        with pytest.raises(ValueError, match="short.*long"):
            FlowKind("medium")

    def test_packet_count(self):
        predicate = PacketCountRange(3, 10)
        assert predicate.match_flow(flow(packets=3))
        assert predicate.match_flow(flow(packets=10))
        assert not predicate.match_flow(flow(packets=11))
        assert not predicate.match_segment(entry(packets=(20, 80)))
        assert not predicate.match_segment(entry(packets=(1, 2)))

    def test_rtt_range(self):
        predicate = RttRange(0.01, 0.1)
        assert predicate.match_flow(flow(rtt=0.05))
        assert not predicate.match_flow(flow(rtt=0.0))
        assert not predicate.match_segment(entry(rtts=(0.2, 0.3)))
        assert not predicate.match_segment(entry(rtts=(0.0, 0.001)))


class TestCombinators:
    def test_and_or_not(self):
        short = FlowKind("short")
        late = TimeRange(4.0, 100.0)
        assert (short & late).match_flow(flow())
        assert not (short & ~late).match_flow(flow())
        assert (short | ~late).match_flow(flow())
        assert MatchAll().match_flow(flow(kind=DatasetId.LONG))

    def test_and_prunes_segments(self):
        predicate = FlowKind("long") & TimeRange(100.0, 200.0)
        assert not predicate.match_segment(entry(flows=(3, 0)))
        assert not predicate.match_segment(entry(time_range=(0.0, 10.0)))

    def test_not_never_prunes_segments(self):
        # "may contain X" says nothing about "all flows are X".
        predicate = ~DestinationAddress(0xC0A80050)
        assert predicate.match_segment(entry(addresses=(0xC0A80050,)))


class TestIndexIsConservative:
    """Property: a segment-level False must imply no flow-level match."""

    def test_random_segments_never_pruned_wrongly(self):
        rng = random.Random(3)
        predicates = [
            TimeRange(2.0, 7.5),
            DestinationAddress(50),
            DestinationPrefix("0.0.0.64/26"),
            FlowKind("long"),
            PacketCountRange(5, 30),
            RttRange(0.01, 0.09),
        ]
        predicates.append(predicates[0] & predicates[3])
        predicates.append(predicates[1] | predicates[4])
        for _ in range(200):
            flows = [
                flow(
                    timestamp=round(rng.uniform(0, 10), 4),
                    kind=rng.choice([DatasetId.SHORT, DatasetId.LONG]),
                    packets=rng.randrange(2, 60),
                    destination=rng.randrange(0, 128),
                    rtt=round(rng.uniform(0, 0.12), 4),
                )
                for _ in range(rng.randrange(1, 6))
            ]
            segment = entry(
                time_range=(
                    min(f.timestamp for f in flows),
                    max(f.timestamp for f in flows),
                ),
                flows=(
                    sum(f.kind is DatasetId.SHORT for f in flows),
                    sum(f.kind is DatasetId.LONG for f in flows),
                ),
                packets=(
                    min(f.packet_count for f in flows),
                    max(f.packet_count for f in flows),
                ),
                rtts=(
                    min(f.rtt for f in flows),
                    max(f.rtt for f in flows),
                ),
                addresses=tuple(f.destination for f in flows),
            )
            for predicate in predicates:
                if any(predicate.match_flow(f) for f in flows):
                    assert predicate.match_segment(segment), (
                        f"{predicate} pruned a segment containing a match"
                    )


class TestDestinationPrefixEdgeCases:
    """Edge prefixes: /0, /32, and non-canonical host bits."""

    def test_prefix_zero_matches_everything(self):
        predicate = DestinationPrefix("0.0.0.0/0")
        assert predicate.match_flow(flow(destination=0))
        assert predicate.match_flow(flow(destination=0xFFFFFFFF))
        # /0 spans the whole address space: no segment can be pruned.
        assert predicate.match_segment(entry())
        assert predicate.match_segment(entry(addresses=(0,)))
        assert predicate.match_segment(entry(addresses=(0xFFFFFFFF,)))

    def test_prefix_32_is_exact_match(self):
        predicate = DestinationPrefix("192.168.0.80/32")
        assert predicate.match_flow(flow(destination=0xC0A80050))
        assert not predicate.match_flow(flow(destination=0xC0A80051))
        assert predicate.match_segment(entry())
        assert not predicate.match_segment(entry(addresses=(0x0A000001,)))

    def test_host_bits_are_canonicalized(self):
        """Parsing masks host bits: 10.0.0.1/8 describes 10.0.0.0/8."""
        predicate = DestinationPrefix("10.0.0.1/8")
        assert predicate.prefix.network == 0x0A000000
        assert str(predicate.prefix) == "10.0.0.0/8"
        assert predicate.match_flow(flow(destination=0x0A123456))
        assert not predicate.match_flow(flow(destination=0x0B000001))

    def test_canonicalized_prefix_segment_bounds_stay_conservative(self):
        """Host bits must not shrink the index range: 10.0.0.1/8 has to
        keep [10.0.0.0, 10.255.255.255] as its probe window."""
        predicate = DestinationPrefix("10.0.0.1/8")
        low_edge = entry(addresses=(0x0A000000,))
        high_edge = entry(addresses=(0x0AFFFFFF | 0x0A000000, 0x0AFFFFFF))
        assert predicate.match_segment(low_edge)
        assert predicate.match_segment(high_edge)
        assert not predicate.match_segment(entry(addresses=(0x09FFFFFF,)))
        assert not predicate.match_segment(entry(addresses=(0x0B000000,)))

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError, match="length out of range"):
            DestinationPrefix("10.0.0.0/33")
        with pytest.raises(ValueError, match="length out of range"):
            DestinationPrefix("10.0.0.0/-1")

    def test_missing_length_rejected(self):
        with pytest.raises(ValueError, match="missing '/length'"):
            DestinationPrefix("10.0.0.0")

    def test_index_conservative_at_prefix_boundaries(self):
        """Property sweep: flows planted exactly on the prefix edges are
        never pruned, for every prefix length."""
        for length in (0, 1, 8, 15, 16, 24, 31, 32):
            base = 0xC0A80050 & (0xFFFFFFFF << (32 - length)) if length else 0
            predicate = DestinationPrefix(f"192.168.0.80/{length}")
            low = base
            high = base | (0xFFFFFFFF >> length if length else 0xFFFFFFFF)
            for destination in {low, high}:
                assert predicate.match_flow(flow(destination=destination))
                assert predicate.match_segment(
                    entry(addresses=(destination,))
                ), f"/{length} pruned its own edge {destination:#x}"
