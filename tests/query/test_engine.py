"""Integration: the query engine against real multi-segment archives.

Includes the PR's acceptance check: a time-range + destination query
over a ≥8-segment archive returns exactly what brute-force full
decompression yields, while decoding only the segments whose index
entries match.
"""

import pytest

from repro.archive import ArchiveReader, build_archive
from repro.core.datasets import DatasetId
from repro.query import (
    DestinationAddress,
    FlowKind,
    MatchAll,
    PacketCountRange,
    QueryEngine,
    TimeRange,
    filter_archive,
    flow_summaries,
    query_archive,
)
from tests.conftest import make_timed_flows

DESTINATIONS = (0xC0A80001, 0xC0A80002, 0xC0A80003, 0xC0A80004)


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    """Ten segments: 30 flows spaced 10 s, rotated every 30 s."""
    path = tmp_path_factory.mktemp("query") / "trace.fctca"
    packets = make_timed_flows(30, spacing=10.0, destinations=DESTINATIONS)
    entries = build_archive(
        path, packets, segment_span=30.0, segment_packets=10**9
    )
    assert len(entries) == 10
    return path


def brute_force(path, predicate):
    """What full-archive decompression would yield for the predicate."""
    with ArchiveReader(path) as reader:
        return [
            flow
            for index, segment in reader.iter_segments()
            for flow in flow_summaries(index, segment)
            if predicate.match_flow(flow)
        ]


class TestAcceptance:
    def test_time_and_destination_query_is_exact_and_partial(self, archive_path):
        predicate = TimeRange(100.0, 200.0) & DestinationAddress(0xC0A80002)
        expected = brute_force(archive_path, predicate)
        assert expected  # the scenario must actually select something

        with ArchiveReader(archive_path) as reader:
            engine = QueryEngine(reader)
            result = engine.run(predicate)
            matching_entries = [
                entry for entry in reader.entries
                if predicate.match_segment(entry)
            ]
            # Exactly the brute-force flows...
            assert result.flows == expected
            # ...decoding only the segments the index could not rule out...
            assert reader.segments_decoded == len(matching_entries)
            assert result.stats.segments_decoded == len(matching_entries)
            # ...which is a strict subset of the archive.
            assert 0 < result.stats.segments_decoded < reader.segment_count
            assert result.stats.bytes_decoded < result.stats.bytes_total

    def test_every_predicate_matches_brute_force(self, archive_path):
        predicates = [
            MatchAll(),
            TimeRange(0.0, 95.0),
            TimeRange(250.0, 1000.0),
            DestinationAddress(0xC0A80001),
            FlowKind("short"),
            PacketCountRange(2, 8),
            TimeRange(50.0, 150.0) | DestinationAddress(0xC0A80004),
            ~DestinationAddress(0xC0A80001),
        ]
        for predicate in predicates:
            result = query_archive(archive_path, predicate)
            assert result.flows == brute_force(archive_path, predicate), predicate


class TestEngine:
    def test_time_pruning_skips_segments(self, archive_path):
        result = query_archive(archive_path, TimeRange(0.0, 25.0))
        assert result.stats.segments_decoded == 1
        assert result.stats.segments_total == 10
        assert len(result.flows) == 3

    def test_impossible_query_decodes_nothing(self, archive_path):
        result = query_archive(archive_path, DestinationAddress("10.9.9.9"))
        assert result.flows == []
        assert result.stats.segments_decoded == 0
        assert result.stats.bytes_decoded == 0

    def test_limit_stops_early(self, archive_path):
        result = query_archive(archive_path, MatchAll(), limit=4)
        assert len(result.flows) == 4
        assert result.stats.segments_decoded <= 2

    def test_stats_lines_render(self, archive_path):
        result = query_archive(archive_path, MatchAll())
        text = "\n".join(result.stats.summary_lines())
        assert "segments decoded" in text and "flows matched" in text

    def test_summary_fields_resolve_datasets(self, archive_path):
        result = query_archive(archive_path, MatchAll())
        assert result.stats.flows_matched == 30
        for flow in result.flows:
            assert flow.kind in (DatasetId.SHORT, DatasetId.LONG)
            assert flow.packet_count >= 2
            assert flow.destination in DESTINATIONS


class TestFilterArchive:
    def test_filtered_subarchive_contains_exactly_the_matches(
        self, archive_path, tmp_path
    ):
        predicate = TimeRange(60.0, 240.0) & DestinationAddress(0xC0A80003)
        expected = brute_force(archive_path, predicate)
        out = tmp_path / "filtered.fctca"
        written, stats = filter_archive(archive_path, out, predicate)
        assert stats.flows_matched == len(expected)
        assert written > 0

        refiltered = query_archive(out, MatchAll())
        assert [
            (f.timestamp, f.kind, f.packet_count, f.destination, f.rtt)
            for f in refiltered.flows
        ] == [
            (f.timestamp, f.kind, f.packet_count, f.destination, f.rtt)
            for f in expected
        ]

    def test_filtered_archive_preserves_epoch(self, archive_path, tmp_path):
        out = tmp_path / "filtered.fctca"
        filter_archive(archive_path, out, TimeRange(100.0, 150.0))
        with ArchiveReader(archive_path) as source, ArchiveReader(out) as sub:
            assert sub.epoch == source.epoch

    def test_filter_respects_limit(self, archive_path, tmp_path):
        out = tmp_path / "limited.fctca"
        written, stats = filter_archive(
            archive_path, out, MatchAll(), limit=4
        )
        assert stats.flows_matched == 4
        result = query_archive(out, MatchAll())
        assert len(result.flows) == 4

    def test_filter_with_no_matches_writes_empty_archive(
        self, archive_path, tmp_path
    ):
        out = tmp_path / "empty.fctca"
        written, stats = filter_archive(
            archive_path, out, DestinationAddress("10.9.9.9")
        )
        assert written == 0 and stats.flows_matched == 0
        with ArchiveReader(out) as reader:
            assert reader.segment_count == 0


class TestStreamPackets:
    """Packet-level streaming: replay only the flows a predicate keeps."""

    def test_match_all_equals_full_replay(self, archive_path):
        from repro.trace.tsh import write_tsh_bytes

        with ArchiveReader(archive_path) as reader:
            full = write_tsh_bytes(reader.iter_packets())
        with ArchiveReader(archive_path) as reader:
            streamed = write_tsh_bytes(
                QueryEngine(reader).stream_packets(MatchAll())
            )
        assert streamed == full

    def test_filtered_stream_is_subsequence_of_full_replay(self, archive_path):
        predicate = TimeRange(60.0, 170.0) & DestinationAddress(0xC0A80002)
        with ArchiveReader(archive_path) as reader:
            full = list(reader.iter_packets())
        with ArchiveReader(archive_path) as reader:
            streamed = list(QueryEngine(reader).stream_packets(predicate))
        assert streamed  # the scenario must select something

        # Filtering skips flows without perturbing survivors: every
        # streamed packet appears in the full replay, in the same order.
        def key(p):
            return (p.timestamp, p.src_ip, p.src_port, p.dst_ip, p.seq, p.ip_id)

        positions = {key(p): i for i, p in enumerate(full)}
        indices = [positions[key(p)] for p in streamed]
        assert indices == sorted(indices)

    def test_packet_count_matches_flow_summaries(self, archive_path):
        predicate = DestinationAddress(0xC0A80003)
        expected_flows = brute_force(archive_path, predicate)
        with ArchiveReader(archive_path) as reader:
            from repro.query import QueryStats

            stats = QueryStats()
            packets = list(
                QueryEngine(reader).stream_packets(predicate, stats=stats)
            )
        assert stats.flows_matched == len(expected_flows)
        assert len(packets) == sum(f.packet_count for f in expected_flows)
        # Only destination-0xC0A80003 flows were synthesized.
        servers = {p.dst_ip for p in packets if p.dst_port == 80}
        assert servers == {0xC0A80003}

    def test_index_prunes_segments(self, archive_path):
        from repro.query import QueryStats

        predicate = TimeRange(100.0, 130.0)
        with ArchiveReader(archive_path) as reader:
            stats = QueryStats()
            packets = list(
                QueryEngine(reader).stream_packets(predicate, stats=stats)
            )
        assert packets
        assert 0 < stats.segments_decoded < stats.segments_total
        assert reader.segments_decoded == stats.segments_decoded

    def test_limit_caps_flows_not_packets(self, archive_path):
        from repro.query import QueryStats

        stats = QueryStats()
        with ArchiveReader(archive_path) as reader:
            packets = list(
                QueryEngine(reader).stream_packets(
                    MatchAll(), limit=3, stats=stats
                )
            )
        assert stats.flows_matched == 3
        # All three flows' packets stream out in full (8 per web flow).
        assert len(packets) == 24

    def test_limit_stops_decoding_further_segments(self, archive_path):
        from repro.query import QueryStats

        stats = QueryStats()
        with ArchiveReader(archive_path) as reader:
            list(
                QueryEngine(reader).stream_packets(
                    MatchAll(), limit=2, stats=stats
                )
            )
            assert reader.segments_decoded < reader.segment_count
