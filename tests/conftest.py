"""Shared fixtures: small deterministic traces and handmade flows."""

from __future__ import annotations

import pytest

from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN
from repro.synth import generate_web_trace
from repro.trace.trace import Trace

CLIENT_IP = 0x8D5A0101  # 141.90.1.1
SERVER_IP = 0xC0A80050  # 192.168.0.80


def make_timed_flows(
    count: int,
    spacing: float = 10.0,
    destinations: tuple[int, ...] = (SERVER_IP,),
    start: float = 0.0,
) -> list[PacketRecord]:
    """``count`` web flows, one every ``spacing`` seconds, cycling dests.

    The archive tests use this to control exactly which time window and
    destination each flow lands in (flow i starts at ``start + i *
    spacing`` toward ``destinations[i % len(destinations)]``).
    """
    packets: list[PacketRecord] = []
    for index in range(count):
        packets.extend(
            make_web_flow(
                start=start + index * spacing,
                client_port=2000 + index,
                server_ip=destinations[index % len(destinations)],
            )
        )
    packets.sort(key=lambda p: p.timestamp)
    return packets


def make_web_flow(
    start: float = 1000.0,
    client_ip: int = CLIENT_IP,
    server_ip: int = SERVER_IP,
    client_port: int = 2000,
    rtt: float = 0.05,
    data_packets: int = 2,
) -> list[PacketRecord]:
    """A canonical short Web flow: handshake, request, data, acks, FIN."""
    gap = 0.0002
    packets = [
        PacketRecord(start, client_ip, server_ip, client_port, 80, flags=TCP_SYN),
        PacketRecord(
            start + rtt, server_ip, client_ip, 80, client_port,
            flags=TCP_SYN | TCP_ACK,
        ),
        PacketRecord(
            start + 2 * rtt, client_ip, server_ip, client_port, 80, flags=TCP_ACK
        ),
        PacketRecord(
            start + 2 * rtt + gap, client_ip, server_ip, client_port, 80,
            flags=TCP_ACK, payload_len=300,
        ),
    ]
    now = start + 3 * rtt
    for index in range(data_packets):
        packets.append(
            PacketRecord(
                now + index * gap, server_ip, client_ip, 80, client_port,
                flags=TCP_ACK, payload_len=1460,
            )
        )
    now += data_packets * gap + rtt
    packets.append(
        PacketRecord(now, client_ip, server_ip, client_port, 80, flags=TCP_ACK)
    )
    packets.append(
        PacketRecord(
            now + gap, client_ip, server_ip, client_port, 80,
            flags=TCP_FIN | TCP_ACK,
        )
    )
    return packets


@pytest.fixture
def web_flow_packets() -> list[PacketRecord]:
    """One 8-packet Web flow."""
    return make_web_flow()


@pytest.fixture
def multi_flow_trace() -> Trace:
    """Fifty similar Web flows against three servers."""
    packets: list[PacketRecord] = []
    for index in range(50):
        packets.extend(
            make_web_flow(
                start=1000.0 + index * 0.05,
                client_ip=CLIENT_IP + index,
                server_ip=SERVER_IP + (index % 3),
                client_port=2000 + index,
            )
        )
    packets.sort(key=lambda p: p.timestamp)
    return Trace(packets, name="multi-flow")


@pytest.fixture(scope="session")
def small_web_trace() -> Trace:
    """A 10-second generated Web trace (session-cached for speed)."""
    return generate_web_trace(duration=10.0, flow_rate=30.0, seed=7)
