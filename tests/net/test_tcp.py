"""Tests for repro.net.tcp — the paper's g1 flag classification."""

import pytest

from repro.net.tcp import (
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TCP_URG,
    FlagClass,
    classify_flags,
    flags_to_str,
    is_flow_terminator,
)


class TestClassifyFlags:
    def test_syn(self):
        assert classify_flags(TCP_SYN) is FlagClass.SYN

    def test_syn_ack(self):
        assert classify_flags(TCP_SYN | TCP_ACK) is FlagClass.SYN_ACK

    def test_plain_ack(self):
        assert classify_flags(TCP_ACK) is FlagClass.ACK

    def test_push_ack_is_ack_class(self):
        assert classify_flags(TCP_PSH | TCP_ACK) is FlagClass.ACK

    def test_fin(self):
        assert classify_flags(TCP_FIN) is FlagClass.FIN_RST

    def test_fin_ack_still_closing(self):
        assert classify_flags(TCP_FIN | TCP_ACK) is FlagClass.FIN_RST

    def test_rst(self):
        assert classify_flags(TCP_RST) is FlagClass.FIN_RST

    def test_rst_ack(self):
        assert classify_flags(TCP_RST | TCP_ACK) is FlagClass.FIN_RST

    def test_no_flags_is_ack_class(self):
        # Bare data segments fall into the most common class.
        assert classify_flags(0) is FlagClass.ACK

    def test_values_match_paper(self):
        # Section 2 assigns 0..3 in this order.
        assert int(FlagClass.SYN) == 0
        assert int(FlagClass.SYN_ACK) == 1
        assert int(FlagClass.ACK) == 2
        assert int(FlagClass.FIN_RST) == 3


class TestFlagsToStr:
    def test_empty(self):
        assert flags_to_str(0) == "-"

    def test_single(self):
        assert flags_to_str(TCP_SYN) == "SYN"

    def test_combined(self):
        assert flags_to_str(TCP_SYN | TCP_ACK) == "SYN|ACK"

    def test_all(self):
        rendered = flags_to_str(
            TCP_FIN | TCP_SYN | TCP_RST | TCP_PSH | TCP_ACK | TCP_URG
        )
        assert rendered == "FIN|SYN|RST|PSH|ACK|URG"


class TestFlowTerminator:
    @pytest.mark.parametrize("flags", [TCP_FIN, TCP_RST, TCP_FIN | TCP_ACK])
    def test_terminators(self, flags):
        assert is_flow_terminator(flags)

    @pytest.mark.parametrize("flags", [0, TCP_SYN, TCP_ACK, TCP_SYN | TCP_ACK])
    def test_non_terminators(self, flags):
        assert not is_flow_terminator(flags)
