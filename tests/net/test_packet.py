"""Tests for repro.net.packet."""

import pytest

from repro.net.packet import HEADER_BYTES, PacketRecord, validate_packet
from repro.net.tcp import TCP_SYN


def make_packet(**overrides) -> PacketRecord:
    defaults = dict(
        timestamp=1.5,
        src_ip=0x0A000001,
        dst_ip=0xC0A80001,
        src_port=1234,
        dst_port=80,
    )
    defaults.update(overrides)
    return PacketRecord(**defaults)


class TestPacketRecord:
    def test_five_tuple(self):
        packet = make_packet()
        key = packet.five_tuple()
        assert (key.src_ip, key.dst_ip) == (packet.src_ip, packet.dst_ip)
        assert (key.src_port, key.dst_port) == (1234, 80)
        assert key.protocol == 6

    def test_total_length(self):
        assert make_packet(payload_len=0).total_length() == HEADER_BYTES
        assert make_packet(payload_len=1460).total_length() == HEADER_BYTES + 1460

    def test_flag_class(self):
        assert make_packet(flags=TCP_SYN).flag_class() == 0

    def test_reversed_swaps_endpoints(self):
        packet = make_packet()
        flipped = packet.reversed()
        assert flipped.src_ip == packet.dst_ip
        assert flipped.dst_port == packet.src_port
        assert flipped.timestamp == packet.timestamp

    def test_describe_mentions_endpoints(self):
        text = make_packet().describe()
        assert "10.0.0.1:1234" in text
        assert "192.168.0.1:80" in text


class TestValidatePacket:
    def test_valid_packet_passes(self):
        validate_packet(make_packet())

    def test_negative_timestamp(self):
        with pytest.raises(ValueError, match="timestamp"):
            validate_packet(make_packet(timestamp=-1.0))

    @pytest.mark.parametrize(
        "field,value",
        [
            ("src_ip", 1 << 32),
            ("dst_ip", -1),
            ("src_port", 70000),
            ("dst_port", -2),
            ("protocol", 300),
            ("flags", 256),
            ("ttl", 256),
            ("ip_id", 1 << 16),
            ("window", 1 << 16),
            ("seq", 1 << 32),
            ("ack", -5),
        ],
    )
    def test_field_out_of_range(self, field, value):
        with pytest.raises(ValueError, match=field):
            validate_packet(make_packet(**{field: value}))

    def test_payload_too_large_for_ip_total_length(self):
        with pytest.raises(ValueError, match="payload_len"):
            validate_packet(make_packet(payload_len=0xFFFF - HEADER_BYTES + 1))
