"""Tests for repro.net.hostprops."""

from repro.net.hostprops import (
    COMMON_WINDOWS,
    INITIAL_TTLS,
    plausible_ttl,
    plausible_window,
)


class TestPlausibleTtl:
    def test_deterministic(self):
        assert plausible_ttl(0x0A000001) == plausible_ttl(0x0A000001)

    def test_below_some_initial_ttl(self):
        for address in range(0x0A000000, 0x0A000100):
            ttl = plausible_ttl(address)
            assert any(initial - 24 <= ttl < initial for initial in INITIAL_TTLS)

    def test_positive(self):
        assert all(
            plausible_ttl(a) > 0 for a in (0, 1, 0xFFFFFFFF, 0x12345678)
        )

    def test_varies_across_hosts(self):
        values = {plausible_ttl(a) for a in range(0x0A000000, 0x0A000200)}
        assert len(values) > 10


class TestPlausibleWindow:
    def test_deterministic(self):
        assert plausible_window(12345) == plausible_window(12345)

    def test_from_common_set(self):
        for address in range(0xC0A80000, 0xC0A80080):
            assert plausible_window(address) in COMMON_WINDOWS

    def test_varies_across_hosts(self):
        values = {plausible_window(a) for a in range(0x0A000000, 0x0A000400)}
        assert len(values) >= 4
