"""Tests for repro.net.checksum (RFC 1071)."""

import struct

import pytest

from repro.net.checksum import internet_checksum, ipv4_header_checksum


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # RFC 1071 section 3 example words:
        # 0x0001 + 0xF203 + 0xF4F5 + 0xF6F7 = 0x2DDF0
        # fold: 0xDDF0 + 0x2 = 0xDDF2; complement: 0x220D.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_all_ones(self):
        assert internet_checksum(b"\xff\xff") == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    def test_verification_property(self):
        # Inserting the checksum makes the total sum verify to zero.
        data = bytes(range(20))
        checksum = internet_checksum(data)
        stamped = data + struct.pack(">H", checksum)
        assert internet_checksum(stamped) == 0


class TestIpv4HeaderChecksum:
    def test_known_header(self):
        # Classic textbook example (Wikipedia IPv4 checksum article).
        header = bytes.fromhex("45000073000040004011 0000 c0a80001c0a800c7".replace(" ", ""))
        assert ipv4_header_checksum(header) == 0xB861

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            ipv4_header_checksum(bytes(19))
