"""Tests for repro.net.ip."""

import random

import pytest

from repro.net.ip import (
    IPv4Prefix,
    address_bit,
    address_class,
    format_ipv4,
    parse_ipv4,
    random_class_b_or_c,
)


class TestParseFormat:
    def test_parse_dotted_quad(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001

    def test_parse_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_broadcast(self):
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_format_roundtrip(self):
        for text in ("1.2.3.4", "192.168.0.80", "223.255.254.1"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            parse_ipv4("10.0.0")

    def test_parse_rejects_octet_overflow(self):
        with pytest.raises(ValueError):
            parse_ipv4("10.0.0.256")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)
        with pytest.raises(ValueError):
            format_ipv4(-1)


class TestAddressClass:
    def test_class_a(self):
        assert address_class(parse_ipv4("10.0.0.1")) == "A"

    def test_class_b(self):
        assert address_class(parse_ipv4("128.0.0.1")) == "B"
        assert address_class(parse_ipv4("191.255.0.1")) == "B"

    def test_class_c(self):
        assert address_class(parse_ipv4("192.0.0.1")) == "C"
        assert address_class(parse_ipv4("223.255.255.1")) == "C"

    def test_class_d_multicast(self):
        assert address_class(parse_ipv4("224.0.0.1")) == "D"

    def test_class_e(self):
        assert address_class(parse_ipv4("240.0.0.1")) == "E"


class TestRandomClassBC:
    def test_always_b_or_c(self):
        rng = random.Random(5)
        for _ in range(500):
            assert address_class(random_class_b_or_c(rng)) in {"B", "C"}

    def test_deterministic_with_seed(self):
        a = [random_class_b_or_c(random.Random(9)) for _ in range(10)]
        b = [random_class_b_or_c(random.Random(9)) for _ in range(10)]
        assert a == b


class TestPrefix:
    def test_parse(self):
        prefix = IPv4Prefix.parse("192.168.0.0/16")
        assert prefix.length == 16
        assert prefix.network == parse_ipv4("192.168.0.0")

    def test_parse_requires_slash(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("192.168.0.0")

    def test_network_normalized_to_mask(self):
        prefix = IPv4Prefix(parse_ipv4("192.168.1.1"), 16)
        assert prefix.network == parse_ipv4("192.168.0.0")

    def test_contains(self):
        prefix = IPv4Prefix.parse("10.1.0.0/16")
        assert prefix.contains(parse_ipv4("10.1.200.3"))
        assert not prefix.contains(parse_ipv4("10.2.0.1"))

    def test_zero_length_contains_everything(self):
        default = IPv4Prefix(0, 0)
        assert default.contains(0)
        assert default.contains(0xFFFFFFFF)

    def test_mask(self):
        assert IPv4Prefix(0, 0).mask() == 0
        assert IPv4Prefix(0, 32).mask() == 0xFFFFFFFF
        assert IPv4Prefix(0, 8).mask() == 0xFF000000

    def test_bit(self):
        prefix = IPv4Prefix.parse("128.0.0.0/1")
        assert prefix.bit(0) == 1

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError):
            IPv4Prefix(0, 0).bit(32)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            IPv4Prefix(0, 33)

    def test_str(self):
        assert str(IPv4Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"


class TestAddressBit:
    def test_msb(self):
        assert address_bit(0x80000000, 0) == 1
        assert address_bit(0x7FFFFFFF, 0) == 0

    def test_lsb(self):
        assert address_bit(1, 31) == 1
        assert address_bit(0, 31) == 0
