"""PacketColumns container and the columnar flow-key kernels.

Every columnar function here has a scalar reference in the same package;
each test computes both and asserts element-wise equality, on whichever
backend (numpy or ``array``) the environment provides — plus explicitly
on the ``array`` fallback via the ``REPRO_NO_NUMPY`` monkeypatch seam.
"""

import pytest

from repro.net import columns as columns_module
from repro.net.columns import (
    COLUMN_FIELDS,
    PacketColumns,
    columns_from_records,
    empty_columns,
    numpy_or_none,
    tolist,
)
from repro.net.flowkey import (
    canonical_key_columns,
    flow_hash,
    flow_hash_columns,
    flow_shard_columns,
)
from repro.net.packet import PacketRecord
from repro.core.streaming import record_shard
from repro.synth import generate_web_trace
from repro.trace.tsh import decode_columns, encode_record, write_tsh_bytes
from repro.trace.reader import read_columns


@pytest.fixture(scope="module")
def packets():
    return list(generate_web_trace(duration=1.0, flow_rate=40.0, seed=3).packets)


@pytest.fixture(params=["native", "fallback"])
def backend(request, monkeypatch):
    """Run a test on the environment backend and the forced fallback."""
    if request.param == "fallback":
        monkeypatch.setattr(columns_module, "_np", None)
        monkeypatch.setattr(columns_module, "_numpy_checked", True)
    return request.param


def test_roundtrip_records(packets, backend):
    cols = columns_from_records(packets)
    if backend == "fallback":
        assert cols.backend == "array"
    assert len(cols) == len(packets)
    assert cols.to_records() == packets


def test_empty_columns(backend):
    cols = empty_columns()
    assert len(cols) == 0
    assert cols.to_records() == []


def test_slice_and_select(packets, backend):
    cols = columns_from_records(packets)
    assert cols.slice(10, 25).to_records() == packets[10:25]
    indices = list(range(0, len(packets), 7))
    assert cols.select(indices).to_records() == [packets[i] for i in indices]


def test_column_fields_cover_packet_record(packets):
    cols = columns_from_records(packets[:4])
    named = dict(zip(COLUMN_FIELDS, cols.columns()))
    assert tolist(named["timestamps"]) == [p.timestamp for p in packets[:4]]
    assert tolist(named["src_ip"]) == [p.src_ip for p in packets[:4]]
    assert tolist(named["flags"]) == [p.flags for p in packets[:4]]


# -- flow-key kernels vs their scalar references ----------------------------


def test_canonical_key_columns_matches_five_tuple(packets, backend):
    cols = columns_from_records(packets)
    key_lo, key_hi, forward = canonical_key_columns(cols)
    for packet, lo, hi, fwd in zip(packets, key_lo, key_hi, forward):
        canon = packet.five_tuple().canonical()
        assert lo == ((canon.src_ip << 16 | canon.src_port) << 8) | canon.protocol
        assert hi == (canon.dst_ip << 16) | canon.dst_port
        assert bool(fwd) == (packet.five_tuple() == canon)


def test_flow_hash_columns_matches_flow_hash(packets, backend):
    cols = columns_from_records(packets)
    hashes = flow_hash_columns(cols)
    for packet, value in zip(packets, hashes):
        assert value == flow_hash(packet.five_tuple())


@pytest.mark.parametrize("workers", [2, 3, 8])
def test_flow_shard_columns_matches_record_shard(packets, workers, backend):
    cols = columns_from_records(packets)
    shards = flow_shard_columns(cols, workers)
    for packet, shard in zip(packets, shards):
        assert shard == record_shard(encode_record(packet), workers)


# -- TSH columnar decode ----------------------------------------------------


def test_decode_columns_matches_decode_record(packets, backend):
    data = write_tsh_bytes(packets)
    cols = decode_columns(data)
    decoded = cols.to_records()
    assert len(decoded) == len(packets)
    for original, roundtripped in zip(packets, decoded):
        # TSH quantizes timestamps to microseconds; everything else exact.
        assert abs(roundtripped.timestamp - original.timestamp) < 1e-5
        assert roundtripped.src_ip == original.src_ip
        assert roundtripped.dst_port == original.dst_port
        assert roundtripped.flags == original.flags


def test_decode_columns_rejects_partial_record():
    data = write_tsh_bytes(
        [PacketRecord(0.0, 1, 2, 3, 4, 6, 0, 0)]
    )
    with pytest.raises(ValueError):
        decode_columns(data[:-1])


# -- satellite 3: identical chunk boundaries on both backends ---------------


def test_identical_chunk_boundaries_across_backends(tmp_path, packets, monkeypatch):
    path = tmp_path / "t.tsh"
    path.write_bytes(write_tsh_bytes(packets))

    def boundaries():
        return [len(chunk) for chunk in read_columns(path, chunk_size=97)]

    native = boundaries()
    monkeypatch.setattr(columns_module, "_np", None)
    monkeypatch.setattr(columns_module, "_numpy_checked", True)
    assert numpy_or_none() is None
    assert boundaries() == native
    assert sum(native) == len(packets)
