"""Tests for repro.net.flowkey."""

from repro.net.flowkey import FiveTuple, flow_hash


def key(src=0x0A000001, dst=0xC0A80001, sport=1234, dport=80) -> FiveTuple:
    return FiveTuple(src, dst, 6, sport, dport)


class TestFiveTuple:
    def test_reversed(self):
        forward = key()
        backward = forward.reversed()
        assert backward.src_ip == forward.dst_ip
        assert backward.src_port == forward.dst_port
        assert backward.reversed() == forward

    def test_canonical_is_direction_insensitive(self):
        forward = key()
        assert forward.canonical() == forward.reversed().canonical()

    def test_canonical_orders_endpoints(self):
        canonical = key().canonical()
        assert (canonical.src_ip, canonical.src_port) <= (
            canonical.dst_ip,
            canonical.dst_port,
        )

    def test_canonical_same_ips_orders_by_port(self):
        same_host = FiveTuple(1, 1, 6, 9999, 80)
        canonical = same_host.canonical()
        assert canonical.src_port == 80

    def test_hashable_and_equal(self):
        assert key() == key()
        assert len({key(), key(), key().reversed()}) == 2

    def test_describe(self):
        assert "10.0.0.1:1234" in key().describe()


class TestFlowHash:
    def test_deterministic(self):
        assert flow_hash(key()) == flow_hash(key())

    def test_direction_sensitive(self):
        # The hash covers the raw tuple; canonicalize first for
        # bidirectional identity.
        assert flow_hash(key()) != flow_hash(key().reversed())

    def test_canonical_hash_matches_both_directions(self):
        assert flow_hash(key().canonical()) == flow_hash(
            key().reversed().canonical()
        )

    def test_spread(self):
        hashes = {
            flow_hash(key(sport=port)) & 0xFFF for port in range(1024, 1424)
        }
        # 400 flows into 4096 buckets: expect wide spread, not clumps.
        assert len(hashes) > 350

    def test_64_bit_range(self):
        value = flow_hash(key())
        assert 0 <= value < 1 << 64
