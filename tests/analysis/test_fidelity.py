"""Unit: the differential fidelity harness (metrics, scoring, report)."""

import json
import math

import pytest

from repro.analysis.fidelity import (
    MIN_INTERARRIVAL,
    SCHEMA,
    FidelityReport,
    ScenarioFidelity,
    evaluate_scenario,
    evaluate_scenarios,
    flow_size_distance,
    flow_sizes,
    interarrival_bins,
    interarrival_entropy,
    score_roundtrip,
    temporal_complexity,
)
from repro.net.packet import PacketRecord
from repro.trace.trace import Trace


def packet_at(timestamp, src_port=1024, dst_port=80, src_ip=1, dst_ip=2):
    return PacketRecord(
        timestamp=timestamp,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
    )


def packets_at(*timestamps):
    return [packet_at(t) for t in timestamps]


class TestInterarrivalBins:
    def test_octave_binning(self):
        # Gaps of 1 s, 2 s, 0.5 s land in octaves 0, 1, -1.
        bins = interarrival_bins(packets_at(0.0, 1.0, 3.0, 3.5))
        assert bins == [0, 1, -1]

    def test_sub_microsecond_gaps_share_the_floor_bin(self):
        bins = interarrival_bins(packets_at(0.0, 0.0, 1e-9))
        assert bins == [int(math.floor(math.log2(MIN_INTERARRIVAL)))] * 2

    def test_fewer_than_two_packets(self):
        assert interarrival_bins([]) == []
        assert interarrival_bins(packets_at(0.0)) == []


class TestEntropyMetrics:
    def test_constant_gaps_have_zero_entropy(self):
        packets = packets_at(*[i * 0.5 for i in range(50)])
        assert interarrival_entropy(packets) == 0.0
        assert temporal_complexity(packets) == 0.0

    def test_two_equally_likely_octaves_give_one_bit(self):
        # Alternating 1 s / 2 s gaps: marginal entropy is exactly 1 bit.
        times, clock = [0.0], 0.0
        for i in range(100):
            clock += 1.0 if i % 2 == 0 else 2.0
            times.append(clock)
        assert interarrival_entropy(packets_at(*times)) == pytest.approx(1.0, abs=0.01)
        # ...and the alternation makes the next gap fully predictable.
        assert temporal_complexity(packets_at(*times)) == pytest.approx(0.0, abs=0.01)

    def test_empty_sequence_scores_zero(self):
        assert interarrival_entropy([]) == 0.0
        assert temporal_complexity([]) == 0.0
        assert temporal_complexity(packets_at(0.0, 1.0)) == 0.0

    def test_temporal_complexity_nonnegative_and_bounded(self):
        packets = packets_at(0.0, 0.1, 0.9, 1.0, 4.2, 4.3, 9.0)
        h = interarrival_entropy(packets)
        t = temporal_complexity(packets)
        assert 0.0 <= t <= h + 1e-9


class TestFlowSizes:
    def test_direction_free_flow_key(self):
        # Both directions of one conversation count as one flow.
        packets = [
            packet_at(0.0, src_ip=1, dst_ip=2, src_port=1024, dst_port=80),
            packet_at(0.1, src_ip=2, dst_ip=1, src_port=80, dst_port=1024),
            packet_at(0.2, src_ip=1, dst_ip=2, src_port=1024, dst_port=80),
        ]
        assert flow_sizes(packets) == [3]

    def test_distinct_flows_counted_separately(self):
        packets = [
            packet_at(0.0, src_port=1024),
            packet_at(0.1, src_port=1025),
            packet_at(0.2, src_port=1025),
        ]
        assert flow_sizes(packets) == [1, 2]

    def test_identical_traces_have_zero_distance(self):
        packets = packets_at(0.0, 0.5, 1.0)
        assert flow_size_distance(packets, packets) == 0.0

    def test_disjoint_size_distributions_have_distance_one(self):
        a = [packet_at(0.0, src_port=1024)]  # one flow of size 1
        b = [packet_at(t, src_port=1024) for t in (0.0, 0.1, 0.2)]  # size 3
        assert flow_size_distance(a, b) == 1.0

    def test_empty_traces_score_instead_of_crash(self):
        assert flow_size_distance([], []) == 0.0
        assert flow_size_distance([], [packet_at(0.0)]) == 1.0
        assert flow_size_distance([packet_at(0.0)], []) == 1.0


class TestScoreRoundtrip:
    def test_perfect_roundtrip_scores_zero_deltas(self):
        trace = Trace(packets_at(0.0, 0.5, 1.0, 1.5), name="t")
        score = score_roundtrip("web", 7, trace, trace, compressed_bytes=44)
        assert score.scenario == "web"
        assert score.seed == 7
        assert score.packets == 4
        assert score.flows == 1
        assert score.entropy_delta == 0.0
        assert score.temporal_delta == 0.0
        assert score.flow_size_ks == 0.0
        assert score.ratio == pytest.approx(44 / score.tsh_bytes)

    def test_dict_roundtrip(self):
        trace = Trace(packets_at(0.0, 1.0), name="t")
        score = score_roundtrip("p2p", 3, trace, trace, compressed_bytes=10)
        assert ScenarioFidelity.from_dict(score.to_dict()) == score


class TestEvaluateScenario:
    def test_scores_a_real_roundtrip(self):
        score = evaluate_scenario("web", duration=1.0, flow_rate=16.0, seed=5)
        assert score.scenario == "web"
        assert score.seed == 5
        assert score.packets > 0
        assert 0.0 < score.ratio < 1.0
        assert score.compressed_bytes < score.tsh_bytes
        # The codec preserves flow populations exactly.
        assert score.flow_size_ks == 0.0

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            evaluate_scenario("bogus", duration=1.0)

    def test_default_seed_is_the_scenario_default(self):
        from repro.synth.scenarios import get_scenario

        score = evaluate_scenario("flood", duration=0.8, flow_rate=16.0)
        assert score.seed == get_scenario("flood").default_seed


class TestFidelityReport:
    @pytest.fixture(scope="class")
    def report(self):
        return evaluate_scenarios(
            ["web", "flood"], duration=0.8, flow_rate=16.0, seed=3
        )

    def test_covers_requested_scenarios_in_order(self, report):
        assert [s.scenario for s in report.scenarios] == ["web", "flood"]
        assert set(report.by_scenario()) == {"web", "flood"}

    def test_default_sweep_covers_every_registered_scenario(self):
        from repro.synth.scenarios import scenario_names

        report = evaluate_scenarios(duration=0.4, flow_rate=8.0, seed=2)
        assert tuple(s.scenario for s in report.scenarios) == scenario_names()

    def test_json_roundtrip(self, report):
        document = json.loads(report.to_json())
        assert document["schema"] == SCHEMA
        assert FidelityReport.from_dict(document) == report

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="not a fidelity report"):
            FidelityReport.from_dict({"schema": "something/else"})

    def test_write_emits_stable_json(self, report, tmp_path):
        path = report.write(tmp_path / "fidelity.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        assert FidelityReport.from_dict(document) == report

    def test_summary_table_shape(self, report):
        lines = report.summary_lines()
        assert lines[0].startswith("scenario")
        assert lines[1].startswith("-")
        assert len(lines) == 2 + len(report.scenarios)
        for scored, line in zip(report.scenarios, lines[2:]):
            assert line.startswith(scored.scenario)
