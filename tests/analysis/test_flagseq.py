"""Tests for the TCP-flag-sequence analysis."""

import pytest

from repro.analysis.flagseq import (
    distribution_distance,
    flag_grammar_similarity,
    flag_ngrams,
    flow_flag_sequence,
    ngram_distribution,
)
from repro.flows.assembler import assemble_flows
from repro.synth import randomize_destinations

from tests.conftest import make_web_flow


class TestSequenceExtraction:
    def test_web_flow_sequence(self, web_flow_packets):
        (flow,) = assemble_flows(web_flow_packets)
        # SYN, SYN+ACK, then ACK-class until the FIN.
        sequence = flow_flag_sequence(flow)
        assert sequence[0] == 0
        assert sequence[1] == 1
        assert sequence[-1] == 3
        assert all(klass == 2 for klass in sequence[2:-1])


class TestNgrams:
    def test_window_count(self):
        assert len(flag_ngrams((0, 1, 2, 3), 2)) == 3

    def test_short_sequence(self):
        assert flag_ngrams((0,), 3) == []

    def test_unigrams(self):
        assert flag_ngrams((0, 1), 1) == [(0,), (1,)]

    def test_bad_n(self):
        with pytest.raises(ValueError):
            flag_ngrams((0, 1), 0)


class TestDistribution:
    def test_normalized(self, multi_flow_trace):
        distribution = ngram_distribution(multi_flow_trace.packets)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_identical_flows_one_grammar(self, multi_flow_trace):
        distribution = ngram_distribution(multi_flow_trace.packets)
        # 50 identical flows: few distinct trigrams.
        assert len(distribution) < 10

    def test_empty(self):
        assert ngram_distribution([]) == {}


class TestDistance:
    def test_identical(self):
        d = {(0, 1, 2): 0.5, (1, 2, 3): 0.5}
        assert distribution_distance(d, d) == 0.0

    def test_disjoint(self):
        assert distribution_distance({(0,): 1.0}, {(1,): 1.0}) == 1.0

    def test_symmetric(self):
        a = {(0,): 0.7, (1,): 0.3}
        b = {(0,): 0.2, (1,): 0.8}
        assert distribution_distance(a, b) == distribution_distance(b, a)

    def test_empty_both(self):
        assert distribution_distance({}, {}) == 0.0


class TestGrammarSimilarity:
    def test_self_similarity(self, multi_flow_trace):
        assert flag_grammar_similarity(
            multi_flow_trace.packets, multi_flow_trace.packets
        ) == pytest.approx(1.0)

    def test_randomized_addresses_keep_grammar(self, multi_flow_trace):
        # Randomization touches addresses, not flags.
        randomized = randomize_destinations(multi_flow_trace)
        assert flag_grammar_similarity(
            multi_flow_trace.packets, randomized.packets
        ) == pytest.approx(1.0)

    def test_different_shapes_differ(self):
        short = []
        long_ = []
        for index in range(10):
            short.extend(
                make_web_flow(start=index * 1.0, client_port=2000 + index,
                              data_packets=1)
            )
            long_.extend(
                make_web_flow(start=index * 1.0, client_port=2000 + index,
                              data_packets=8)
            )
        similarity = flag_grammar_similarity(
            sorted(short, key=lambda p: p.timestamp),
            sorted(long_, key=lambda p: p.timestamp),
        )
        assert similarity < 0.95
