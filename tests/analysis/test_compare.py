"""Tests for the distribution-similarity measures."""

import random

import pytest

from repro.analysis.compare import (
    earth_movers_distance,
    kolmogorov_smirnov,
    max_bucket_difference,
)


class TestKolmogorovSmirnov:
    def test_identical_samples(self):
        sample = [1, 2, 3, 4, 5]
        assert kolmogorov_smirnov(sample, sample) == 0.0

    def test_disjoint_samples(self):
        assert kolmogorov_smirnov([1, 2, 3], [10, 11, 12]) == 1.0

    def test_symmetric(self):
        a = [1, 3, 5, 7]
        b = [2, 4, 6, 8]
        assert kolmogorov_smirnov(a, b) == kolmogorov_smirnov(b, a)

    def test_range_bounds(self):
        rng = random.Random(1)
        a = [rng.gauss(0, 1) for _ in range(100)]
        b = [rng.gauss(0.5, 1) for _ in range(100)]
        distance = kolmogorov_smirnov(a, b)
        assert 0.0 < distance < 1.0

    def test_shifted_distribution_detected(self):
        rng = random.Random(2)
        base = [rng.gauss(0, 1) for _ in range(500)]
        near = [rng.gauss(0.05, 1) for _ in range(500)]
        far = [rng.gauss(2.0, 1) for _ in range(500)]
        assert kolmogorov_smirnov(base, near) < kolmogorov_smirnov(base, far)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kolmogorov_smirnov([], [1])


class TestEarthMovers:
    def test_identical(self):
        assert earth_movers_distance([1, 2], [1, 2]) == 0.0

    def test_unit_shift(self):
        # Shifting a distribution by c moves mass exactly c.
        assert earth_movers_distance([0, 1], [2, 3]) == pytest.approx(2.0)

    def test_scales_with_separation(self):
        near = earth_movers_distance([0], [1])
        far = earth_movers_distance([0], [10])
        assert far == pytest.approx(10 * near)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            earth_movers_distance([1], [])


class TestBucketDifference:
    def test_identical(self):
        assert max_bucket_difference([50, 30, 20], [50, 30, 20]) == 0.0

    def test_max_selected(self):
        assert max_bucket_difference([60, 30, 10], [40, 35, 25]) == 20.0

    def test_mismatched_length_rejected(self):
        with pytest.raises(ValueError):
            max_bucket_difference([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_bucket_difference([], [])
