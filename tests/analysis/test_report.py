"""Tests for the text-report helpers."""

import pytest

from repro.analysis.report import ascii_bar_chart, ascii_curve, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # All separator dashes under the widest cell.
        assert set(lines[1].replace(" ", "")) == {"-"}

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestBarChart:
    def test_bars_scale(self):
        chart = ascii_bar_chart(["a", "b"], [100.0, 50.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_values_rendered(self):
        chart = ascii_bar_chart(["x"], [42.5])
        assert "42.5%" in chart

    def test_empty(self):
        assert ascii_bar_chart([], []) == "(empty chart)"

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])


class TestCurve:
    def test_series_markers_present(self):
        plot = ascii_curve(
            [0.0, 1.0, 2.0],
            {"alpha": [0.0, 1.0, 2.0], "beta": [2.0, 1.0, 0.0]},
        )
        assert "A" in plot
        assert "B" in plot
        assert "A=alpha" in plot

    def test_empty(self):
        assert ascii_curve([], {}) == "(empty plot)"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_curve([1.0], {"s": [1.0, 2.0]})

    def test_constant_series_no_crash(self):
        plot = ascii_curve([0.0, 1.0], {"flat": [5.0, 5.0]})
        assert "F" in plot
