"""Tests for the trace comparator."""

import pytest

from repro.analysis.summary import compare_traces
from repro.core import roundtrip
from repro.synth import randomize_destinations
from repro.trace.trace import Trace


class TestCompareTraces:
    def test_self_comparison_similar(self, small_web_trace):
        comparison = compare_traces(small_web_trace, small_web_trace)
        assert comparison.statistically_similar()
        assert comparison.flag_similarity == pytest.approx(1.0)
        assert comparison.locality_gap == 0.0

    def test_decompressed_is_statistical_twin(self, small_web_trace):
        decompressed, _ = roundtrip(small_web_trace)
        comparison = compare_traces(small_web_trace, decompressed)
        assert comparison.statistically_similar()

    def test_randomized_fails_structure(self, small_web_trace):
        randomized = randomize_destinations(small_web_trace)
        comparison = compare_traces(small_web_trace, randomized)
        # Flags survive randomization but address structure must not.
        assert comparison.flag_similarity == pytest.approx(1.0)
        assert comparison.structure_gap > 0.5

    def test_render_contains_metrics(self, small_web_trace):
        comparison = compare_traces(small_web_trace, small_web_trace)
        text = comparison.render()
        assert "mean flow length" in text
        assert "flag trigram similarity" in text

    def test_empty_rejected(self, small_web_trace):
        with pytest.raises(ValueError):
            compare_traces(small_web_trace, Trace())
