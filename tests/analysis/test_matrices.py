"""The traffic-matrix analytics subsystem: matrices, engines, reports."""

from __future__ import annotations

import json

import pytest

import repro
from repro.analysis.matrices import (
    AddressAnonymizer,
    MatrixReport,
    StreamingWindowAggregator,
    TrafficMatrix,
    WindowStats,
    _stats_python,
    _stats_scipy,
    matrix_report_for_archive,
    matrix_report_for_compressed,
    publish_window_gauges,
    scipy_or_none,
    window_stats_for_compressed,
)
from repro.archive.reader import ArchiveReader
from repro.core.compressor import compress_trace
from repro.core.flowmeta import FlowRecord, flow_records
from repro.obs import MetricsRegistry, render_prometheus
from repro.query.engine import QueryStats
from repro.synth import generate_web_trace


@pytest.fixture(scope="module")
def compressed():
    return compress_trace(generate_web_trace(duration=8.0, flow_rate=25.0, seed=5))


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("matrices") / "trace.fctca"
    trace = generate_web_trace(duration=12.0, flow_rate=30.0, seed=3)
    repro.api.create_archive(
        path, iter(trace.packets), options=repro.api.Options.make(segment_span=3.0)
    )
    return path


def _record(start, src, dst, fwd=2, rev=1, bytes_fwd=300, bytes_rev=1460):
    return FlowRecord(
        segment=0,
        start=start,
        end=start + 0.1,
        src=src,
        dst=dst,
        is_long=False,
        packets=fwd + rev,
        bytes=bytes_fwd + bytes_rev,
        packets_fwd=fwd,
        packets_rev=rev,
        bytes_fwd=bytes_fwd,
        bytes_rev=bytes_rev,
        rtt=0.05,
    )


class TestTrafficMatrix:
    def test_add_flow_folds_both_directions(self):
        matrix = TrafficMatrix(0, 0.0, 60.0)
        matrix.add_flow(_record(1.0, src=10, dst=20))
        assert matrix.flows == 1
        assert matrix.packets == 3
        cells = {(s, d): (p, b) for s, d, p, b in matrix.iter_cells()}
        assert cells[(10, 20)] == (2, 300)
        assert cells[(20, 10)] == (1, 1460)

    def test_one_sided_flow_adds_one_cell(self):
        matrix = TrafficMatrix(0, 0.0, 60.0)
        matrix.add_flow(_record(1.0, src=10, dst=20, rev=0, bytes_rev=0))
        assert matrix.links == 1

    def test_cells_accumulate(self):
        matrix = TrafficMatrix(0, 0.0, 60.0)
        matrix.add_flow(_record(1.0, src=10, dst=20))
        matrix.add_flow(_record(2.0, src=10, dst=20))
        cells = {(s, d): (p, b) for s, d, p, b in matrix.iter_cells()}
        assert cells[(10, 20)] == (4, 600)

    def test_anonymizer_applies_before_the_matrix(self):
        anonymizer = AddressAnonymizer("key")
        matrix = TrafficMatrix(0, 0.0, 60.0)
        matrix.add_flow(_record(1.0, src=10, dst=20), anonymizer)
        sources = {src for src, _, _, _ in matrix.iter_cells()}
        assert 10 not in sources and 20 not in sources


class TestStatsEngines:
    """The scipy/CSR and pure-python engines must agree exactly."""

    def _dense_matrix(self):
        matrix = TrafficMatrix(2, 10.0, 20.0)
        # A scanner (fan-out 20), a heavy hitter, and tied cells.
        for dst in range(100, 120):
            matrix.add_flow(_record(11.0, src=1, dst=dst, rev=0, bytes_rev=0))
        for _ in range(5):
            matrix.add_flow(_record(12.0, src=2, dst=3))
        matrix.add_flow(_record(13.0, src=4, dst=5))
        matrix.add_flow(_record(13.0, src=5, dst=4))
        return matrix

    def test_engines_identical_on_handmade_matrix(self):
        if scipy_or_none() is None:
            pytest.skip("scipy unavailable or gated off")
        matrix = self._dense_matrix()
        assert _stats_scipy(matrix, 10, 16) == _stats_python(matrix, 10, 16)

    def test_engines_identical_on_real_traffic(self, compressed):
        if scipy_or_none() is None:
            pytest.skip("scipy unavailable or gated off")
        matrix = TrafficMatrix(0, 0.0, 100.0)
        for record in flow_records(compressed):
            matrix.add_flow(record)
        for top_k, scan in ((10, 16), (3, 4), (100, 1)):
            assert _stats_scipy(matrix, top_k, scan) == _stats_python(
                matrix, top_k, scan
            )

    def test_scan_candidates_cross_threshold_only(self):
        stats = _stats_python(self._dense_matrix(), 10, 16)
        assert [c.src for c in stats.scan_candidates] == [1]
        assert stats.scan_candidates[0].fanout == 20
        assert stats.max_fanout == 20

    def test_top_links_rank_then_tie_break_on_addresses(self):
        matrix = TrafficMatrix(0, 0.0, 1.0)
        matrix.add(9, 1, 5, 50)
        matrix.add(3, 7, 5, 50)
        matrix.add(3, 2, 5, 50)
        matrix.add(1, 1, 9, 10)
        stats = _stats_python(matrix, 10, 100)
        ranked = [(link.src, link.dst) for link in stats.top_links_packets]
        assert ranked == [(1, 1), (3, 2), (3, 7), (9, 1)]


class TestAddressAnonymizer:
    def test_deterministic_per_key(self):
        first, second = AddressAnonymizer("k1"), AddressAnonymizer("k1")
        assert first(0x0A000001) == second(0x0A000001)

    def test_different_keys_differ(self):
        assert AddressAnonymizer("k1")(1) != AddressAnonymizer("k2")(1)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            AddressAnonymizer("")

    def test_anonymization_preserves_structure(self, compressed):
        plain = matrix_report_for_compressed(compressed, window=2.0)
        masked = matrix_report_for_compressed(
            compressed, window=2.0, anonymize_key="secret"
        )
        assert masked.anonymized and not plain.anonymized
        assert masked.flows == plain.flows
        for a, b in zip(plain.windows, masked.windows):
            assert (a.sources, a.destinations, a.links) == (
                b.sources,
                b.destinations,
                b.links,
            )
            assert a.fanout_hist == b.fanout_hist
        assert (
            masked.windows[0].top_links_packets
            != plain.windows[0].top_links_packets
        )


class TestStreamingWindowAggregator:
    def test_windows_split_on_span(self):
        aggregator = StreamingWindowAggregator(10.0)
        out = list(aggregator.feed(_record(1.0, 1, 2)))
        out += list(aggregator.feed(_record(9.0, 1, 2)))
        out += list(aggregator.feed(_record(11.0, 1, 2)))
        out += list(aggregator.finish())
        assert [m.index for m in out] == [0, 1]
        assert [m.flows for m in out] == [2, 1]
        assert out[0].start == 0.0 and out[0].end == 10.0

    def test_empty_windows_are_skipped(self):
        aggregator = StreamingWindowAggregator(1.0)
        out = list(aggregator.feed(_record(0.5, 1, 2)))
        out += list(aggregator.feed(_record(7.5, 1, 2)))
        out += list(aggregator.finish())
        assert [m.index for m in out] == [0, 7]

    def test_regressing_start_raises(self):
        aggregator = StreamingWindowAggregator(10.0)
        list(aggregator.feed(_record(5.0, 1, 2)))
        with pytest.raises(ValueError, match="nondecreasing"):
            list(aggregator.feed(_record(4.0, 1, 2)))

    def test_span_none_is_one_unbounded_window(self):
        aggregator = StreamingWindowAggregator(None)
        assert not list(aggregator.feed(_record(1.0, 1, 2)))
        assert not list(aggregator.feed(_record(9999.0, 1, 2)))
        (matrix,) = aggregator.finish()
        assert matrix.flows == 2 and matrix.end == float("inf")

    def test_nonpositive_span_rejected(self):
        with pytest.raises(ValueError):
            StreamingWindowAggregator(0.0)

    def test_holds_at_most_one_window(self):
        aggregator = StreamingWindowAggregator(1.0)
        for second in range(50):
            for matrix in aggregator.feed(_record(float(second), 1, 2)):
                del matrix
            assert aggregator.windows_built >= second - 1
            # The only retained state is the current window's matrix.
            assert aggregator._current is None or (
                aggregator._current.index == second
            )


class TestMatrixReport:
    def test_json_roundtrip(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            report = matrix_report_for_archive(reader, window=3.0)
        document = json.loads(report.to_json())
        assert document["schema"] == "repro.analysis/matrix-report/v1"
        assert MatrixReport.from_dict(document) == report

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            MatrixReport.from_dict({"schema": "bogus/v9"})

    def test_write_and_reload(self, archive_path, tmp_path):
        with ArchiveReader(archive_path) as reader:
            report = matrix_report_for_archive(reader, window=3.0)
        out = report.write(tmp_path / "report.json")
        reloaded = MatrixReport.from_dict(json.loads(out.read_text()))
        assert reloaded.windows == report.windows

    def test_summary_lines_cover_every_window(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            report = matrix_report_for_archive(reader, window=3.0)
        text = "\n".join(report.summary_lines())
        assert f"across {len(report.windows)} window(s)" in text
        assert "segments decoded" in text


class TestDifferentialIndexVsDecode:
    """The acceptance criterion: identical statistics, less work."""

    def test_index_and_decode_reports_identical(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            by_index = matrix_report_for_archive(reader, window=3.0)
        with ArchiveReader(archive_path) as reader:
            by_decode = matrix_report_for_archive(
                reader, window=3.0, method="decode"
            )
        assert by_index.windows == by_decode.windows
        assert by_index.flows == by_decode.flows

    def test_bounded_range_decodes_strictly_fewer_segments(self, archive_path):
        registry = MetricsRegistry()
        from repro.obs import scoped

        with scoped(registry):
            index_stats = QueryStats()
            with ArchiveReader(archive_path) as reader:
                by_index = matrix_report_for_archive(
                    reader, window=3.0, since=3.0, until=6.0, stats=index_stats
                )
            pinned = registry.counter(
                "analysis.matrices.segments_decoded", ""
            ).value
            decode_stats = QueryStats()
            with ArchiveReader(archive_path) as reader:
                by_decode = matrix_report_for_archive(
                    reader,
                    window=3.0,
                    since=3.0,
                    until=6.0,
                    method="decode",
                    stats=decode_stats,
                )
        assert by_index.windows == by_decode.windows
        assert index_stats.segments_decoded < decode_stats.segments_decoded
        assert by_index.segments_pruned > 0
        # The obs counter pins the same accounting the report carries.
        assert pinned == by_index.segments_decoded

    def test_invalid_method_rejected(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            with pytest.raises(ValueError, match="method"):
                matrix_report_for_archive(reader, method="turbo")


class TestServeSnapshot:
    def test_window_stats_for_compressed(self, compressed):
        stats = window_stats_for_compressed(compressed)
        assert isinstance(stats, WindowStats)
        assert stats.flows == len(compressed.time_seq)

    def test_gauges_render_to_prometheus(self, compressed):
        registry = MetricsRegistry()
        stats = window_stats_for_compressed(compressed)
        publish_window_gauges(stats, registry)
        text = render_prometheus(registry)
        assert f"repro_analysis_matrices_window_flows {stats.flows}" in text
        assert "repro_analysis_matrices_windows_total 1" in text
