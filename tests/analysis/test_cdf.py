"""Tests for empirical CDFs and histograms."""

import pytest

from repro.analysis.cdf import EmpiricalCdf, histogram


class TestEmpiricalCdf:
    def test_evaluate(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3, 4])
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(2) == 0.5
        assert cdf.evaluate(4) == 1.0
        assert cdf.evaluate(10) == 1.0

    def test_evaluate_between_points(self):
        cdf = EmpiricalCdf.from_samples([1, 3])
        assert cdf.evaluate(2) == 0.5

    def test_evaluate_many(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3, 4])
        assert cdf.evaluate_many([0, 2, 5]) == [0.0, 0.5, 1.0]

    def test_quantile(self):
        cdf = EmpiricalCdf.from_samples(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 100

    def test_quantile_bounds(self):
        cdf = EmpiricalCdf.from_samples([1])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_min_max_mean(self):
        cdf = EmpiricalCdf.from_samples([3, 1, 2])
        assert cdf.min() == 1
        assert cdf.max() == 3
        assert cdf.mean() == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([])

    def test_monotone(self):
        cdf = EmpiricalCdf.from_samples([5, 1, 9, 3, 3, 7])
        values = [cdf.evaluate(x) for x in range(11)]
        assert values == sorted(values)


class TestHistogram:
    def test_basic(self):
        counts = histogram([1, 2, 2, 3, 9], [0, 2, 4, 10])
        assert counts == [1, 3, 1]

    def test_half_open_buckets(self):
        counts = histogram([2.0], [0, 2, 4])
        assert counts == [0, 1]

    def test_out_of_range_dropped(self):
        counts = histogram([-1, 100], [0, 10])
        assert counts == [0]

    def test_upper_edge_excluded(self):
        counts = histogram([10], [0, 10])
        assert counts == [0]

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            histogram([1], [0])
        with pytest.raises(ValueError):
            histogram([1], [5, 5])
