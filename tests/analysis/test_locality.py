"""Tests for the temporal-locality analysis."""

import pytest

from repro.analysis.locality import (
    COLD,
    profile_locality,
    stack_distances,
    working_set_sizes,
)


class TestStackDistances:
    def test_all_cold(self):
        assert stack_distances([1, 2, 3]) == [COLD, COLD, COLD]

    def test_immediate_reuse_depth_zero(self):
        assert stack_distances([1, 1]) == [COLD, 0]

    def test_textbook_sequence(self):
        # a b c b a: b at depth 1, a at depth 2.
        assert stack_distances([1, 2, 3, 2, 1]) == [COLD, COLD, COLD, 1, 2]

    def test_mru_refresh(self):
        # a b a b: each re-reference at depth 1 after the first pair.
        assert stack_distances([1, 2, 1, 2]) == [COLD, COLD, 1, 1]

    def test_empty(self):
        assert stack_distances([]) == []

    def test_distance_bounded_by_uniques(self):
        stream = [1, 2, 3, 4, 1, 2, 3, 4] * 4
        distances = [d for d in stack_distances(stream) if d != COLD]
        assert max(distances) <= 3


class TestProfile:
    def test_local_stream_profiles_shallow(self):
        local = [i % 4 for i in range(400)]
        profile = profile_locality(local)
        assert profile.unique_count == 4
        assert profile.median_stack_distance <= 3
        assert profile.hit_fraction_within[8] > 0.95

    def test_scanning_stream_profiles_deep(self):
        scanning = list(range(200)) * 3
        profile = profile_locality(scanning)
        assert profile.median_stack_distance == pytest.approx(199, abs=1)
        assert profile.hit_fraction_within[8] < 0.05

    def test_cold_fraction(self):
        profile = profile_locality([1, 2, 3, 1, 2, 3])
        assert profile.cold_fraction == pytest.approx(0.5)

    def test_summary_lines(self):
        lines = profile_locality([1, 1, 2]).summary_lines()
        assert any("unique addresses" in line for line in lines)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_locality([])


class TestWorkingSet:
    def test_sizes(self):
        refs = [1, 1, 2, 3, 3, 3]
        assert working_set_sizes(refs, 3) == [2, 1]

    def test_partial_tail_window(self):
        assert working_set_sizes([1, 2, 3, 4, 5], 2) == [2, 2, 1]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            working_set_sizes([1], 0)

    def test_local_vs_scanning(self):
        local = [i % 4 for i in range(100)]
        scanning = list(range(100))
        assert max(working_set_sizes(local, 20)) < max(
            working_set_sizes(scanning, 20)
        )
