"""Tests for the TSH binary format."""

import io

import pytest

from repro.net.checksum import internet_checksum
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_SYN
from repro.trace.tsh import (
    TSH_RECORD_BYTES,
    decode_record,
    encode_record,
    read_tsh,
    read_tsh_bytes,
    tsh_file_size,
    write_tsh,
    write_tsh_bytes,
)


def sample_packet(**overrides) -> PacketRecord:
    defaults = dict(
        timestamp=1234.567890,
        src_ip=0x0A000001,
        dst_ip=0xC0A80050,
        src_port=43210,
        dst_port=80,
        flags=TCP_SYN | TCP_ACK,
        payload_len=777,
        seq=0xDEADBEEF,
        ack=0x01020304,
        ttl=57,
        ip_id=0x4242,
        window=8760,
    )
    defaults.update(overrides)
    return PacketRecord(**defaults)


class TestRecordCodec:
    def test_record_is_44_bytes(self):
        assert len(encode_record(sample_packet())) == TSH_RECORD_BYTES == 44

    def test_roundtrip_all_fields(self):
        packet = sample_packet()
        decoded = decode_record(encode_record(packet))
        assert decoded.src_ip == packet.src_ip
        assert decoded.dst_ip == packet.dst_ip
        assert decoded.src_port == packet.src_port
        assert decoded.dst_port == packet.dst_port
        assert decoded.protocol == packet.protocol
        assert decoded.flags == packet.flags
        assert decoded.payload_len == packet.payload_len
        assert decoded.seq == packet.seq
        assert decoded.ack == packet.ack
        assert decoded.ttl == packet.ttl
        assert decoded.ip_id == packet.ip_id
        assert decoded.window == packet.window

    def test_timestamp_microsecond_precision(self):
        packet = sample_packet(timestamp=99.123456)
        decoded = decode_record(encode_record(packet))
        assert decoded.timestamp == pytest.approx(99.123456, abs=1e-6)

    def test_timestamp_rounding_carry(self):
        # 0.9999996 rounds to the next full second.
        packet = sample_packet(timestamp=10.9999996)
        decoded = decode_record(encode_record(packet))
        assert decoded.timestamp == pytest.approx(11.0, abs=1e-6)

    def test_ip_checksum_is_valid(self):
        record = encode_record(sample_packet())
        ip_header = record[8:28]
        # A correct IPv4 checksum makes the header sum verify to zero.
        assert internet_checksum(ip_header) == 0

    def test_decode_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            decode_record(bytes(43))

    def test_encode_validates_packet(self):
        with pytest.raises(ValueError):
            encode_record(sample_packet(src_port=70000))


class TestStreamIo:
    def test_write_read_many(self):
        packets = [sample_packet(timestamp=float(i)) for i in range(25)]
        data = write_tsh_bytes(packets)
        assert len(data) == 25 * TSH_RECORD_BYTES
        decoded = read_tsh_bytes(data)
        assert [p.timestamp for p in decoded] == [float(i) for i in range(25)]

    def test_write_returns_count(self):
        buffer = io.BytesIO()
        assert write_tsh([sample_packet()] * 3, buffer) == 3

    def test_read_empty(self):
        assert read_tsh_bytes(b"") == []

    def test_read_truncated_raises(self):
        data = write_tsh_bytes([sample_packet()])[:-1]
        with pytest.raises(ValueError, match="truncated"):
            list(read_tsh(io.BytesIO(data)))

    def test_file_size_formula(self):
        assert tsh_file_size(0) == 0
        assert tsh_file_size(100) == 4400

    def test_file_size_rejects_negative(self):
        with pytest.raises(ValueError):
            tsh_file_size(-1)
