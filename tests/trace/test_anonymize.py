"""Tests for prefix-preserving anonymization."""

import pytest

from repro.net.ip import parse_ipv4
from repro.trace.anonymize import (
    PrefixPreservingAnonymizer,
    anonymize_prefix_preserving,
    shared_prefix_length,
)


class TestSharedPrefixLength:
    def test_identical(self):
        assert shared_prefix_length(0x0A000001, 0x0A000001) == 32

    def test_first_bit_differs(self):
        assert shared_prefix_length(0x00000000, 0x80000000) == 0

    def test_slash_24(self):
        a = parse_ipv4("10.1.2.3")
        b = parse_ipv4("10.1.2.200")
        assert shared_prefix_length(a, b) >= 24


class TestAnonymizer:
    def test_deterministic(self):
        anonymizer = PrefixPreservingAnonymizer(key=b"k1")
        assert anonymizer.anonymize(0x0A000001) == anonymizer.anonymize(0x0A000001)

    def test_key_changes_mapping(self):
        a = PrefixPreservingAnonymizer(key=b"k1").anonymize(0x0A000001)
        b = PrefixPreservingAnonymizer(key=b"k2").anonymize(0x0A000001)
        assert a != b

    def test_injective_on_sample(self):
        anonymizer = PrefixPreservingAnonymizer()
        inputs = list(range(0x0A000000, 0x0A000400))
        outputs = {anonymizer.anonymize(a) for a in inputs}
        assert len(outputs) == len(inputs)

    def test_prefix_preservation_property(self):
        """The defining property: shared input prefix length equals
        shared output prefix length."""
        anonymizer = PrefixPreservingAnonymizer()
        pairs = [
            ("10.1.2.3", "10.1.2.77"),     # /24 siblings
            ("10.1.2.3", "10.1.9.9"),      # /16 siblings
            ("10.1.2.3", "10.200.0.1"),    # /8 siblings
            ("10.1.2.3", "192.168.0.1"),   # unrelated
        ]
        for text_a, text_b in pairs:
            a, b = parse_ipv4(text_a), parse_ipv4(text_b)
            mapped_a = anonymizer.anonymize(a)
            mapped_b = anonymizer.anonymize(b)
            assert shared_prefix_length(a, b) == shared_prefix_length(
                mapped_a, mapped_b
            )

    def test_addresses_actually_change(self):
        anonymizer = PrefixPreservingAnonymizer()
        changed = sum(
            1
            for a in range(0x0A000000, 0x0A000100)
            if anonymizer.anonymize(a) != a
        )
        assert changed > 250  # essentially all

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer().anonymize(1 << 32)

    def test_string_key_accepted(self):
        assert PrefixPreservingAnonymizer("text-key").anonymize(1) >= 0


class TestTraceAnonymization:
    def test_trace_fields_untouched_except_addresses(self, multi_flow_trace):
        anonymized = anonymize_prefix_preserving(multi_flow_trace)
        assert len(anonymized) == len(multi_flow_trace)
        for original, mapped in zip(multi_flow_trace.packets, anonymized.packets):
            assert mapped.timestamp == original.timestamp
            assert mapped.flags == original.flags
            assert mapped.payload_len == original.payload_len
            assert mapped.src_port == original.src_port
            assert mapped.src_ip != original.src_ip or original.src_ip == 0

    def test_flow_structure_preserved(self, multi_flow_trace):
        from repro.trace.stats import group_flow_lengths

        anonymized = anonymize_prefix_preserving(multi_flow_trace)
        assert len(group_flow_lengths(anonymized.packets)) == len(
            group_flow_lengths(multi_flow_trace.packets)
        )

    def test_name_suffix(self, multi_flow_trace):
        assert anonymize_prefix_preserving(multi_flow_trace).name.endswith("-anon")
