"""Tests for trace filters and slicers."""

import pytest

from repro.net.packet import PacketRecord
from repro.trace.filters import (
    is_web_packet,
    select_elapsed,
    select_time_window,
    select_web_traffic,
    split_by_seconds,
)
from repro.trace.trace import Trace


def packet(ts: float, sport=1234, dport=80, proto=6) -> PacketRecord:
    return PacketRecord(ts, 0x0A000001, 0xC0A80001, sport, dport, protocol=proto)


class TestWebFilter:
    def test_port_80_either_side(self):
        assert is_web_packet(packet(1.0, dport=80))
        assert is_web_packet(packet(1.0, sport=80, dport=5555))

    def test_https_and_alt(self):
        assert is_web_packet(packet(1.0, dport=443))
        assert is_web_packet(packet(1.0, dport=8080))

    def test_non_web_port(self):
        assert not is_web_packet(packet(1.0, dport=25))

    def test_udp_not_web(self):
        assert not is_web_packet(packet(1.0, dport=80, proto=17))

    def test_select_web_traffic(self):
        trace = Trace([packet(1.0), packet(2.0, dport=25)], name="mix")
        web = select_web_traffic(trace)
        assert len(web) == 1
        assert web.name == "mix-web"


class TestTimeWindow:
    def test_half_open_window(self):
        trace = Trace([packet(t) for t in (1.0, 2.0, 3.0)])
        subset = select_time_window(trace, 1.0, 3.0)
        assert [p.timestamp for p in subset] == [1.0, 2.0]

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            select_time_window(Trace(), 5.0, 1.0)


class TestElapsed:
    def test_prefix_relative_to_start(self):
        trace = Trace([packet(t) for t in (100.0, 105.0, 111.0)])
        prefix = select_elapsed(trace, 10.0)
        assert [p.timestamp for p in prefix] == [100.0, 105.0]

    def test_zero_elapsed_keeps_first_instant(self):
        trace = Trace([packet(100.0), packet(100.0), packet(101.0)])
        assert len(select_elapsed(trace, 0.0)) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            select_elapsed(Trace(), -1.0)


class TestSplit:
    def test_split_even(self):
        trace = Trace([packet(float(t)) for t in range(10)])
        slices = split_by_seconds(trace, 2.0)
        assert [len(s) for s in slices] == [2, 2, 2, 2, 2]

    def test_split_with_gap(self):
        trace = Trace([packet(0.0), packet(5.5)])
        slices = split_by_seconds(trace, 1.0)
        assert len(slices) == 6
        assert [len(s) for s in slices] == [1, 0, 0, 0, 0, 1]

    def test_split_empty(self):
        assert split_by_seconds(Trace(), 1.0) == []

    def test_rejects_nonpositive_bucket(self):
        with pytest.raises(ValueError):
            split_by_seconds(Trace(), 0.0)

    def test_slices_cover_all_packets(self):
        trace = Trace([packet(t * 0.7) for t in range(20)])
        slices = split_by_seconds(trace, 3.0)
        assert sum(len(s) for s in slices) == 20
