"""Tests for the chunked TSH file reader."""

import pytest

from repro.synth import generate_web_trace
from repro.trace.reader import (
    count_tsh_packets,
    first_tsh_timestamp,
    iter_tsh_chunks,
    iter_tsh_packets,
    iter_tsh_records,
    read_columns,
)
from repro.trace.trace import Trace
from repro.trace.tsh import TSH_RECORD_BYTES


@pytest.fixture(scope="module")
def trace():
    return generate_web_trace(duration=3.0, flow_rate=30.0, seed=11)


@pytest.fixture(scope="module")
def tsh_file(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("reader") / "t.tsh"
    trace.save_tsh(path)
    return path


class TestIterPackets:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 8192])
    def test_matches_batch_load(self, trace, tsh_file, chunk_size):
        streamed = list(iter_tsh_packets(tsh_file, chunk_size))
        assert streamed == Trace.load_tsh(tsh_file).packets

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsh"
        path.write_bytes(b"")
        assert list(iter_tsh_packets(path)) == []

    def test_truncated_record_raises(self, tsh_file, tmp_path):
        data = tsh_file.read_bytes()
        path = tmp_path / "cut.tsh"
        path.write_bytes(data[: len(data) - 11])
        with pytest.raises(ValueError, match="truncated"):
            list(iter_tsh_packets(path))

    def test_bad_chunk_size(self, tsh_file):
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_tsh_packets(tsh_file, 0))


class TestIterChunks:
    def test_chunk_sizes(self, trace, tsh_file):
        chunks = list(iter_tsh_chunks(tsh_file, 100))
        assert all(len(chunk) == 100 for chunk in chunks[:-1])
        assert 1 <= len(chunks[-1]) <= 100
        assert sum(len(chunk) for chunk in chunks) == len(trace)

    def test_single_giant_chunk(self, trace, tsh_file):
        chunks = list(iter_tsh_chunks(tsh_file, 10**6))
        assert len(chunks) == 1
        assert chunks[0] == Trace.load_tsh(tsh_file).packets

    def test_truncated_final_record_raises(self, tsh_file, tmp_path):
        """A sub-record tail carried past the last read must still raise.

        Regression guard for the memoryview-hoisted decode loop: the
        truncation check lives in the shared block reader, and a chunk
        size that leaves the partial record as the carried ``pending``
        tail (rather than inside a block) is the corner that loop never
        sees.
        """
        path = tmp_path / "cut.tsh"
        path.write_bytes(tsh_file.read_bytes()[:-1])
        with pytest.raises(ValueError, match="truncated"):
            list(iter_tsh_chunks(path, 100))
        # Whole-record chunks: the 43-byte tail is pure carry-over.
        with pytest.raises(ValueError, match="truncated"):
            list(iter_tsh_chunks(path, 1))


class TestReadColumns:
    @pytest.mark.parametrize("chunk_size", [1, 97, 8192])
    def test_matches_scalar_chunks(self, tsh_file, chunk_size):
        scalar = list(iter_tsh_chunks(tsh_file, chunk_size))
        columnar = list(read_columns(tsh_file, chunk_size))
        assert [len(chunk) for chunk in columnar] == [
            len(chunk) for chunk in scalar
        ]
        assert [c.to_records() for c in columnar] == scalar

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsh"
        path.write_bytes(b"")
        assert list(read_columns(path)) == []

    def test_truncated_final_record_raises(self, tsh_file, tmp_path):
        path = tmp_path / "cut.tsh"
        path.write_bytes(tsh_file.read_bytes()[:-7])
        with pytest.raises(ValueError, match="truncated"):
            list(read_columns(path, 100))


class TestIterRecords:
    def test_raw_records_match_file_bytes(self, tsh_file):
        data = tsh_file.read_bytes()
        records = list(iter_tsh_records(tsh_file, 100))
        assert all(len(record) == TSH_RECORD_BYTES for record in records)
        assert b"".join(records) == data

    def test_truncated_raises(self, tsh_file, tmp_path):
        path = tmp_path / "cut.tsh"
        path.write_bytes(tsh_file.read_bytes()[:-5])
        with pytest.raises(ValueError, match="truncated"):
            list(iter_tsh_records(path))


class TestCountPackets:
    def test_counts_without_reading(self, trace, tsh_file):
        assert count_tsh_packets(tsh_file) == len(trace)

    def test_rejects_partial_record(self, tmp_path):
        path = tmp_path / "odd.tsh"
        path.write_bytes(b"\x00" * (TSH_RECORD_BYTES + 3))
        with pytest.raises(ValueError, match="not a multiple"):
            count_tsh_packets(path)


class TestFirstTimestamp:
    def test_reads_first_packet_time(self, trace, tsh_file):
        first = first_tsh_timestamp(tsh_file)
        assert first == pytest.approx(trace.packets[0].timestamp, abs=1e-6)

    def test_empty_file_is_none(self, tmp_path):
        path = tmp_path / "empty.tsh"
        path.write_bytes(b"")
        assert first_tsh_timestamp(path) is None

    def test_truncated_raises(self, tmp_path):
        path = tmp_path / "cut.tsh"
        path.write_bytes(b"\x00" * 10)
        with pytest.raises(ValueError, match="truncated"):
            first_tsh_timestamp(path)
