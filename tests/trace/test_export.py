"""Unit: incremental packet-stream export (TSH and pcap-lite)."""

import pytest

from repro.trace.export import (
    ExportResult,
    export_format_for,
    export_packet_stream,
)
from repro.trace.trace import Trace
from repro.trace.tsh import TSH_RECORD_BYTES

from tests.conftest import make_web_flow


class TestFormatInference:
    def test_pcap_suffix(self):
        assert export_format_for("out.pcap") == "pcap"

    def test_everything_else_is_tsh(self):
        assert export_format_for("out.tsh") == "tsh"
        assert export_format_for("out.bin") == "tsh"
        assert export_format_for("out") == "tsh"


class TestExport:
    def test_tsh_stream_matches_save_tsh(self, tmp_path):
        packets = make_web_flow()
        streamed = tmp_path / "stream.tsh"
        batched = tmp_path / "batch.tsh"
        result = export_packet_stream(iter(packets), streamed)
        Trace(list(packets)).save_tsh(batched)
        assert streamed.read_bytes() == batched.read_bytes()
        assert result == ExportResult(
            packets=len(packets),
            size_bytes=len(packets) * TSH_RECORD_BYTES,
            format="tsh",
        )

    def test_pcap_stream_matches_save_pcap(self, tmp_path):
        packets = make_web_flow()
        streamed = tmp_path / "stream.pcap"
        batched = tmp_path / "batch.pcap"
        export_packet_stream(iter(packets), streamed)
        Trace(list(packets)).save_pcap(batched)
        assert streamed.read_bytes() == batched.read_bytes()

    def test_explicit_format_overrides_suffix(self, tmp_path):
        packets = make_web_flow()
        path = tmp_path / "capture.dat"
        result = export_packet_stream(iter(packets), path, format="pcap")
        assert result.format == "pcap"
        assert path.read_bytes()[:4] == (0xA1B2C3D4).to_bytes(4, "little")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown export format"):
            export_packet_stream(iter([]), tmp_path / "x.tsh", format="csv")

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.tsh"
        result = export_packet_stream(iter([]), path)
        assert result.packets == 0
        assert path.stat().st_size == 0

    def test_consumes_iterator_once(self, tmp_path):
        """The writer must stream — a generator is enough, no list."""
        packets = make_web_flow()
        result = export_packet_stream(
            (packet for packet in packets), tmp_path / "gen.tsh"
        )
        assert result.packets == len(packets)
