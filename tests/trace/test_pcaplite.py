"""Tests for the minimal pcap codec."""

import io
import struct

import pytest

from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_SYN
from repro.trace.pcaplite import PCAP_MAGIC, read_pcap, write_pcap


def sample_packets(count=5):
    return [
        PacketRecord(
            timestamp=10.0 + i * 0.25,
            src_ip=0x0A000001 + i,
            dst_ip=0xC0A80001,
            src_port=1024 + i,
            dst_port=80,
            flags=TCP_SYN,
            payload_len=100 * i,
            seq=i,
            ack=2 * i,
            ttl=60,
            ip_id=i,
            window=4096,
        )
        for i in range(count)
    ]


class TestPcapRoundtrip:
    def test_roundtrip_fields(self):
        packets = sample_packets()
        buffer = io.BytesIO()
        assert write_pcap(packets, buffer) == len(packets)
        buffer.seek(0)
        decoded = list(read_pcap(buffer))
        assert len(decoded) == len(packets)
        for original, restored in zip(packets, decoded):
            assert restored.src_ip == original.src_ip
            assert restored.dst_port == original.dst_port
            assert restored.payload_len == original.payload_len
            assert restored.flags == original.flags
            assert restored.seq == original.seq
            assert restored.window == original.window
            assert restored.timestamp == pytest.approx(
                original.timestamp, abs=1e-6
            )

    def test_empty_file(self):
        buffer = io.BytesIO()
        write_pcap([], buffer)
        buffer.seek(0)
        assert list(read_pcap(buffer)) == []

    def test_global_header_magic(self):
        buffer = io.BytesIO()
        write_pcap([], buffer)
        (magic,) = struct.unpack("<I", buffer.getvalue()[:4])
        assert magic == PCAP_MAGIC


class TestPcapErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            list(read_pcap(io.BytesIO(b"\x00" * 24)))

    def test_truncated_global_header(self):
        with pytest.raises(ValueError, match="global header"):
            list(read_pcap(io.BytesIO(b"\x00" * 10)))

    def test_truncated_record(self):
        buffer = io.BytesIO()
        write_pcap(sample_packets(1), buffer)
        data = buffer.getvalue()[:-5]
        with pytest.raises(ValueError, match="truncated"):
            list(read_pcap(io.BytesIO(data)))
