"""Tests for the Trace container."""

import pytest

from repro.net.packet import PacketRecord
from repro.trace.trace import Trace, merge_traces


def packet(ts: float, src=0x0A000001) -> PacketRecord:
    return PacketRecord(ts, src, 0xC0A80001, 1234, 80, payload_len=10)


class TestBasics:
    def test_len_iter_getitem(self):
        trace = Trace([packet(1.0), packet(2.0)])
        assert len(trace) == 2
        assert [p.timestamp for p in trace] == [1.0, 2.0]
        assert trace[1].timestamp == 2.0

    def test_append_extend(self):
        trace = Trace()
        trace.append(packet(1.0))
        trace.extend([packet(2.0), packet(3.0)])
        assert len(trace) == 3

    def test_duration(self):
        assert Trace().duration() == 0.0
        assert Trace([packet(5.0)]).duration() == 0.0
        assert Trace([packet(5.0), packet(9.5)]).duration() == 4.5

    def test_start_end_time(self):
        trace = Trace([packet(2.0), packet(7.0)])
        assert trace.start_time() == 2.0
        assert trace.end_time() == 7.0
        assert Trace().start_time() == 0.0

    def test_time_ordering(self):
        assert Trace([packet(1.0), packet(2.0)]).is_time_ordered()
        assert not Trace([packet(2.0), packet(1.0)]).is_time_ordered()
        assert Trace([packet(2.0), packet(1.0)]).sorted_by_time().is_time_ordered()


class TestSizes:
    def test_stored_size_is_44_per_packet(self):
        assert Trace([packet(1.0)] * 10).stored_size_bytes() == 440

    def test_header_bytes_is_40_per_packet(self):
        assert Trace([packet(1.0)] * 10).header_bytes() == 400

    def test_wire_bytes_includes_payload(self):
        assert Trace([packet(1.0)]).wire_bytes() == 50


class TestTransforms:
    def test_filter(self):
        trace = Trace([packet(1.0), packet(2.0), packet(3.0)])
        subset = trace.filter(lambda p: p.timestamp >= 2.0)
        assert len(subset) == 2
        assert len(trace) == 3  # original untouched

    def test_map_packets(self):
        trace = Trace([packet(1.0)])
        shifted = trace.map_packets(
            lambda p: PacketRecord(
                p.timestamp + 10, p.src_ip, p.dst_ip, p.src_port, p.dst_port
            )
        )
        assert shifted[0].timestamp == 11.0

    def test_head(self):
        trace = Trace([packet(float(i)) for i in range(10)])
        assert len(trace.head(3)) == 3

    def test_renamed_shares_packets(self):
        trace = Trace([packet(1.0)], name="a")
        renamed = trace.renamed("b")
        assert renamed.name == "b"
        assert renamed.packets is trace.packets


class TestIo:
    def test_tsh_bytes_roundtrip(self):
        trace = Trace([packet(1.0), packet(2.0)], name="io")
        restored = Trace.from_tsh_bytes(trace.to_tsh_bytes())
        assert len(restored) == 2
        assert restored[0].src_ip == trace[0].src_ip

    def test_save_load_tsh(self, tmp_path):
        trace = Trace([packet(1.0)], name="disk")
        path = tmp_path / "x.tsh"
        written = trace.save_tsh(path)
        assert path.stat().st_size == written == 44
        loaded = Trace.load_tsh(path)
        assert loaded.name == "x"
        assert len(loaded) == 1

    def test_save_load_pcap(self, tmp_path):
        trace = Trace([packet(1.0), packet(2.0)])
        path = tmp_path / "x.pcap"
        assert trace.save_pcap(path) == 2
        loaded = Trace.load_pcap(path)
        assert len(loaded) == 2


class TestMerge:
    def test_merge_sorts_by_time(self):
        a = Trace([packet(1.0), packet(5.0)])
        b = Trace([packet(3.0)])
        merged = merge_traces([a, b])
        assert [p.timestamp for p in merged] == [1.0, 3.0, 5.0]

    def test_merge_empty(self):
        assert len(merge_traces([])) == 0
