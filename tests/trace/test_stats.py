"""Tests for flow statistics (the section 3 machinery)."""

import pytest

from repro.trace.stats import (
    FlowLengthDistribution,
    compute_statistics,
    group_flow_lengths,
)
from repro.trace.trace import Trace

from tests.conftest import make_web_flow


class TestFlowLengthDistribution:
    def test_from_lengths(self):
        dist = FlowLengthDistribution.from_lengths([2, 2, 3, 10])
        assert dist.total_flows() == 4
        assert dist.total_packets() == 17

    def test_probability(self):
        dist = FlowLengthDistribution.from_lengths([2, 2, 3, 3])
        assert dist.probability(2) == 0.5
        assert dist.probability(99) == 0.0

    def test_probabilities_sum_to_one(self):
        dist = FlowLengthDistribution.from_lengths([1, 2, 3, 4, 5])
        assert sum(dist.probabilities().values()) == pytest.approx(1.0)

    def test_mean_length(self):
        dist = FlowLengthDistribution.from_lengths([2, 4])
        assert dist.mean_length() == 3.0

    def test_fraction_flows_at_most(self):
        dist = FlowLengthDistribution.from_lengths([2, 50, 51, 100])
        assert dist.fraction_flows_at_most(50) == 0.5

    def test_fraction_packets_at_most(self):
        dist = FlowLengthDistribution.from_lengths([10, 90])
        assert dist.fraction_packets_at_most(10) == pytest.approx(0.1)

    def test_percentile_length(self):
        dist = FlowLengthDistribution.from_lengths([1] * 98 + [100] * 2)
        assert dist.percentile_length(0.98) == 1
        assert dist.percentile_length(1.0) == 100

    def test_percentile_rejects_bad_fraction(self):
        dist = FlowLengthDistribution.from_lengths([1])
        with pytest.raises(ValueError):
            dist.percentile_length(0.0)

    def test_empty_distribution(self):
        dist = FlowLengthDistribution.from_lengths([])
        assert dist.total_flows() == 0
        assert dist.mean_length() == 0.0
        assert dist.fraction_flows_at_most(10) == 0.0


class TestGrouping:
    def test_bidirectional_grouping(self, web_flow_packets):
        flows = group_flow_lengths(web_flow_packets)
        # Both directions of the conversation are one flow.
        assert len(flows) == 1
        (packets,) = flows.values()
        assert len(packets) == len(web_flow_packets)

    def test_separate_flows_by_port(self):
        packets = make_web_flow(client_port=2000) + make_web_flow(client_port=2001)
        assert len(group_flow_lengths(packets)) == 2


class TestComputeStatistics:
    def test_multi_flow(self, multi_flow_trace):
        stats = compute_statistics(multi_flow_trace)
        assert stats.flow_count == 50
        assert stats.packet_count == len(multi_flow_trace)
        assert stats.short_flow_fraction == 1.0
        assert stats.short_packet_fraction == 1.0
        assert stats.short_byte_fraction == 1.0

    def test_generated_trace_matches_paper_shape(self, small_web_trace):
        stats = compute_statistics(small_web_trace)
        # The calibrated generator reproduces section 3's aggregates.
        assert stats.short_flow_fraction > 0.90
        assert 0.50 < stats.short_packet_fraction < 0.95
        assert 0.55 < stats.short_byte_fraction < 0.95

    def test_summary_lines_mention_paper(self, multi_flow_trace):
        lines = compute_statistics(multi_flow_trace).summary_lines()
        assert any("paper: 98%" in line for line in lines)

    def test_empty_trace(self):
        stats = compute_statistics(Trace())
        assert stats.flow_count == 0
        assert stats.short_byte_fraction == 0.0
