"""The uniform verb surface across all four store kinds."""

import pytest

from repro import api
from repro.api import errors
from repro.trace.trace import Trace


class TestPackets:
    def test_tsh_packets_match_trace(self, tsh_path):
        with api.open(tsh_path) as store:
            replayed = list(store.packets())
        assert replayed == Trace.load_tsh(tsh_path).packets

    def test_pcap_packets_match_trace(self, pcap_path, trace):
        with api.open(pcap_path) as store:
            replayed = list(store.packets())
        assert [p.dst_ip for p in replayed] == [p.dst_ip for p in trace.packets]

    def test_container_replay_matches_batch(self, fctc_path):
        from repro.core import decompress_trace, deserialize_compressed

        batch = decompress_trace(
            deserialize_compressed(fctc_path.read_bytes())
        ).packets
        with api.open(fctc_path) as store:
            assert list(store.packets()) == batch

    def test_archive_replay_is_time_ordered(self, fctca_path):
        with api.open(fctca_path) as store:
            timestamps = [p.timestamp for p in store.packets()]
        assert timestamps == sorted(timestamps)

    def test_filtered_container_replay_subset(self, fctc_path):
        predicate = api.TimeRange(0.0, 1.0)
        with api.open(fctc_path) as store:
            full = list(store.packets())
            filtered = list(store.packets(predicate))
        assert 0 < len(filtered) < len(full)
        # Filtering skips flows; survivors are byte-identical packets.
        full_keys = {(p.timestamp, p.seq, p.src_port, p.dst_ip) for p in full}
        assert all(
            (p.timestamp, p.seq, p.src_port, p.dst_ip) in full_keys
            for p in filtered
        )


class TestFlowsAndQuery:
    def test_flows_uniform_across_kinds(self, tsh_path, fctc_path, fctca_path):
        counts = {}
        for path in (tsh_path, fctc_path, fctca_path):
            with api.open(path) as store:
                rows = list(store.flows())
            assert all(isinstance(row, api.FlowSummary) for row in rows)
            counts[path.suffix] = len(rows)
        # tsh and fctc see the same single-segment flow count; the
        # archive splits flows at rotation bounds so it can only grow.
        assert counts[".tsh"] == counts[".fctc"]
        assert counts[".fctca"] >= counts[".fctc"]

    def test_query_respects_predicate_and_limit(self, fctca_path):
        predicate = api.FlowKind("short")
        with api.open(fctca_path) as store:
            everything = store.query()
            shorts = store.query(predicate)
            capped = store.query(predicate, limit=3)
        assert 0 < len(shorts.flows) <= len(everything.flows)
        assert len(capped.flows) == 3
        assert capped.stats.flows_matched == 3

    def test_archive_query_prunes_segments(self, fctca_path):
        with api.open(fctca_path) as store:
            result = store.query(api.TimeRange(0.0, 0.5))
        assert result.stats.segments_decoded < result.stats.segments_total

    def test_trace_query_counts_stats(self, tsh_path):
        with api.open(tsh_path) as store:
            result = store.query(api.FlowKind("short"))
        assert result.stats.flows_scanned >= result.stats.flows_matched > 0


class TestCompress:
    def test_auto_equals_forced_stream(self, tmp_path, tsh_path):
        batch, stream = tmp_path / "b.fctc", tmp_path / "s.fctc"
        with api.open(tsh_path) as store:
            store.compress(batch)  # auto → batch at this size
            store.compress(
                stream, options=api.Options.make(stream=True)
            )
        assert batch.read_bytes() == stream.read_bytes()

    def test_auto_threshold_switches_paths(self, tmp_path, tsh_path):
        import dataclasses

        from repro.api.options import Options, StreamingOptions

        # A threshold of 0 makes auto stream even a tiny input.
        options = Options(
            streaming=StreamingOptions(stream_threshold_packets=0)
        )
        out = tmp_path / "forced-auto-stream.fctc"
        with api.open(tsh_path, options=options) as store:
            assert store._should_stream(options)
            store.compress(out, options=options)
        with api.open(tsh_path) as store:
            assert not store._should_stream(store.options)
        ref = tmp_path / "ref.fctc"
        with api.open(tsh_path) as store:
            store.compress(ref)
        assert out.read_bytes() == ref.read_bytes()
        assert dataclasses.replace(options)  # options stay copyable

    def test_backend_roundtrip(self, tmp_path, tsh_path):
        out = tmp_path / "z.fctc"
        with api.open(tsh_path) as store:
            report = store.compress(
                out, options=api.Options.make(backend="zlib")
            )
        assert report.compressed_bytes == out.stat().st_size
        with api.open(out) as store:
            backends = {section.backend for section in store.sections()}
        assert "zlib" in backends

    def test_trace_to_archive_by_suffix(self, tmp_path, tsh_path):
        out = tmp_path / "direct.fctca"
        with api.open(tsh_path) as store:
            report = store.compress(
                out, options=api.Options.make(segment_span=1.0)
            )
        assert isinstance(report, api.ArchiveBuildReport)
        assert report.segments_written > 1
        with api.open(out) as store:
            assert store.kind.value == "archive"

    def test_container_default_rewrite_preserves_backends(
        self, tmp_path, tsh_path
    ):
        encoded = tmp_path / "enc.fctc"
        with api.open(tsh_path) as store:
            store.compress(encoded, options=api.Options.make(backend="zlib"))
        rewritten = tmp_path / "rewritten.fctc"
        with api.open(encoded) as store:
            store.compress(rewritten)  # default options: faithful rewrite
        assert [s.backend for s in api.container_sections(rewritten)] == [
            s.backend for s in api.container_sections(encoded)
        ]
        assert rewritten.read_bytes() == encoded.read_bytes()

    def test_parallel_compress_rejects_archive_dest(self, tmp_path, tsh_path):
        from repro.api import errors

        with api.open(tsh_path) as store:
            with pytest.raises(errors.OptionsError):
                store.compress(
                    tmp_path / "x.fctca", options=api.Options.make(workers=2)
                )

    def test_container_transcode_preserves_datasets(self, tmp_path, fctc_path):
        out = tmp_path / "re.fctc"
        with api.open(fctc_path) as store:
            store.compress(out, options=api.Options.make(backend="bz2"))
            original_flows = store.compressed.flow_count()
        with api.open(out) as store:
            assert store.compressed.flow_count() == original_flows

    def test_archive_reencode(self, tmp_path, fctca_path):
        out = tmp_path / "re.fctca"
        with api.open(fctca_path) as source:
            report = source.compress(
                out, options=api.Options.make(backend="zlib")
            )
            assert report.segments_written == source.reader.segment_count
        assert out.stat().st_size < fctca_path.stat().st_size


class TestExportAppendFilter:
    def test_export_decompress(self, tmp_path, fctc_path):
        out = tmp_path / "restored.tsh"
        with api.open(fctc_path) as store:
            result = store.export(out)
        assert result.packets == len(Trace.load_tsh(out))

    def test_export_convert(self, tmp_path, tsh_path, trace):
        out = tmp_path / "converted.pcap"
        with api.open(tsh_path) as store:
            result = store.export(out)
        assert result.format == "pcap"
        assert len(Trace.load_pcap(out)) == len(trace)

    def test_append_grows_archive(self, tmp_path, tsh_path, fctca_path):
        grown = tmp_path / "grown.fctca"
        grown.write_bytes(fctca_path.read_bytes())
        with api.open(grown) as store:
            before = store.reader.segment_count
            report = store.append([tsh_path])
            # The session sees the appended segments immediately.
            assert store.reader.segment_count == report.segments_total
        assert report.segments_total > before

    def test_filter_writes_subarchive(self, tmp_path, fctca_path):
        out = tmp_path / "window.fctca"
        with api.open(fctca_path) as store:
            written, stats = store.filter(out, api.TimeRange(0.0, 1.0))
        assert 0 < written < stats.segments_total
        with api.open(out) as store:
            assert store.reader.segment_count == written


class TestCapabilities:
    def test_append_on_trace_file(self, tsh_path):
        with pytest.raises(errors.CapabilityError) as excinfo:
            api.open(tsh_path).append([tsh_path])
        assert "archive" in str(excinfo.value)

    def test_window_probe_on_container(self, fctc_path):
        # stats()/matrices() reach containers now; the index-backed
        # window probe still needs an archive footer.
        with pytest.raises(errors.CapabilityError):
            api.open(fctc_path).window_probe(4)

    def test_model_on_archive(self, fctca_path):
        with api.open(fctca_path) as store:
            with pytest.raises(errors.CapabilityError):
                store.model()

    def test_fidelity_on_container(self, fctc_path):
        with pytest.raises(errors.CapabilityError):
            api.open(fctc_path).fidelity()

    def test_parallel_replay_only_on_archives(self, fctc_path):
        with pytest.raises(errors.CapabilityError):
            api.open(fctc_path).packets(workers=2)

    def test_filtered_replay_not_on_raw_traces(self, tsh_path):
        with pytest.raises(errors.CapabilityError):
            api.open(tsh_path).packets(api.MatchAll())

    def test_archive_rejects_filtered_parallel(self, fctca_path):
        with api.open(fctca_path) as store:
            with pytest.raises(errors.OptionsError):
                store.packets(api.MatchAll(), workers=2)

    def test_stats_only_replay_fills_stats(self, fctca_path, fctc_path):
        # Passing stats without a predicate must still account the work,
        # never silently return zeros.
        for path in (fctca_path, fctc_path):
            stats = api.QueryStats()
            with api.open(path) as store:
                emitted = sum(1 for _ in store.packets(stats=stats))
            assert emitted > 0
            assert stats.flows_matched == stats.flows_scanned > 0

    def test_stats_rejected_on_raw_traces(self, tsh_path):
        with pytest.raises(errors.CapabilityError):
            api.open(tsh_path).packets(stats=api.QueryStats())


class TestFidelity:
    def test_trace_file_scores_its_own_roundtrip(self, tsh_path, trace):
        with api.open(tsh_path) as store:
            score = store.fidelity()
        assert score.packets == len(trace)
        assert score.seed == 0  # captures have no generator seed
        assert 0.0 < score.ratio < 1.0
        assert score.flow_size_ks == 0.0

    def test_options_reach_the_scored_container(self, tsh_path):
        with api.open(tsh_path) as store:
            raw = store.fidelity()
            coded = store.fidelity(
                options=api.Options.make(backend="zlib")
            )
        # Same trace either way; only the container size may move.
        assert coded.packets == raw.packets
        assert coded.compressed_bytes < raw.compressed_bytes


class TestInfo:
    def test_info_headline_fields(self, tsh_path, fctc_path, fctca_path, trace):
        with api.open(tsh_path) as store:
            assert store.info().packets == len(trace)
        with api.open(fctc_path) as store:
            info = store.info()
            assert info.packets == len(trace)
            assert info.flows == store.compressed.flow_count()
        with api.open(fctca_path) as store:
            info = store.info()
            assert info.packets == len(trace)
            assert info.flows == store.reader.flow_count()

    def test_container_detail_lines_cover_sections(self, fctc_path):
        with api.open(fctc_path) as store:
            text = "\n".join(store.info().summary_lines())
        assert "short templates" in text
        assert "time_seq" in text
        assert "stored sections" in text
