"""The stats()/matrices()/window_probe() verbs across store kinds."""

from __future__ import annotations

import pytest

import repro
from repro.api.errors import CapabilityError
from repro.analysis.matrices import MatrixReport, TrafficMatrix
from repro.query.engine import QueryStats, WindowProbe
from repro.trace.stats import TraceStatistics


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    from repro.synth import generate_web_trace
    from repro.trace.export import export_packet_stream

    path = tmp_path_factory.mktemp("stores") / "t.tsh"
    trace = generate_web_trace(duration=8.0, flow_rate=25.0, seed=5)
    export_packet_stream(iter(trace.packets), path)
    return path


@pytest.fixture(scope="module")
def container_path(tmp_path_factory, trace_path):
    path = tmp_path_factory.mktemp("stores") / "t.fctc"
    with repro.open(trace_path) as store:
        store.compress(path)
    return path


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory, trace_path):
    path = tmp_path_factory.mktemp("stores") / "t.fctca"
    repro.api.create_archive(
        path, [trace_path], options=repro.api.Options.make(segment_span=2.0)
    )
    return path


class TestTraceFileStats:
    def test_no_arguments_keeps_legacy_statistics(self, trace_path):
        with repro.open(trace_path) as store:
            stats = store.stats()
        assert isinstance(stats, TraceStatistics)

    def test_window_switches_to_matrix_report(self, trace_path):
        with repro.open(trace_path) as store:
            report = store.stats(window=2.0)
        assert isinstance(report, MatrixReport)
        assert report.flows > 0
        assert report.segments_total == 1

    def test_matrices_stream(self, trace_path):
        with repro.open(trace_path) as store:
            matrices = list(store.matrices(window=2.0))
        assert matrices
        assert all(isinstance(m, TrafficMatrix) for m in matrices)

    def test_window_probe_unsupported(self, trace_path):
        with repro.open(trace_path) as store:
            with pytest.raises(CapabilityError, match="archive"):
                store.window_probe(4)


class TestContainerStats:
    def test_stats_defaults_to_matrix_report(self, container_path):
        with repro.open(container_path) as store:
            report = store.stats(window=2.0)
        assert isinstance(report, MatrixReport)

    def test_container_matches_trace_file(self, trace_path, container_path):
        with repro.open(trace_path) as store:
            from_trace = store.stats(window=2.0)
        with repro.open(container_path) as store:
            from_container = store.stats(window=2.0)
        assert from_container.windows == from_trace.windows


class TestArchiveStats:
    def test_index_and_decode_methods_agree(self, archive_path):
        # Note: archive windows are NOT comparable to container windows
        # — segmentation cuts flows at segment boundaries — but the two
        # derivation methods over the same archive must agree exactly.
        with repro.open(archive_path) as store:
            by_index = store.stats(window=2.0)
        with repro.open(archive_path) as store:
            by_decode = store.stats(window=2.0, method="decode")
        assert by_index.windows == by_decode.windows

    def test_query_stats_accounting_flows_through(self, archive_path):
        query_stats = QueryStats()
        with repro.open(archive_path) as store:
            report = store.stats(
                window=2.0, since=2.0, until=4.0, query_stats=query_stats
            )
        assert query_stats.segments_decoded == report.segments_decoded
        assert report.segments_pruned > 0

    def test_matrices_stream(self, archive_path):
        with repro.open(archive_path) as store:
            matrices = list(store.matrices(window=2.0))
        assert matrices
        assert [m.index for m in matrices] == sorted(m.index for m in matrices)

    def test_window_probe_rows(self, archive_path):
        with repro.open(archive_path) as store:
            probes = store.window_probe(4)
            total_segments = store.reader.segment_count
        assert len(probes) == 4
        assert all(isinstance(probe, WindowProbe) for probe in probes)
        assert all(
            0 <= probe.segments_overlapping <= total_segments for probe in probes
        )

    def test_window_probe_rejects_bad_count(self, archive_path):
        with repro.open(archive_path) as store:
            with pytest.raises(ValueError):
                store.window_probe(0)
