"""Shared fixtures for the façade tests: one small workload, all formats."""

import pytest

from repro import api
from repro.synth import generate_web_trace


@pytest.fixture(scope="module")
def trace():
    return generate_web_trace(duration=3.0, flow_rate=40.0, seed=11)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("api")


@pytest.fixture(scope="module")
def tsh_path(workdir, trace):
    path = workdir / "t.tsh"
    trace.save_tsh(path)
    return path


@pytest.fixture(scope="module")
def pcap_path(workdir, trace):
    path = workdir / "t.pcap"
    trace.save_pcap(path)
    return path


@pytest.fixture(scope="module")
def fctc_path(workdir, tsh_path):
    path = workdir / "t.fctc"
    with api.open(tsh_path) as store:
        store.compress(path)
    return path


@pytest.fixture(scope="module")
def fctca_path(workdir, tsh_path):
    path = workdir / "t.fctca"
    api.create_archive(
        path, [tsh_path], options=api.Options.make(segment_span=1.0)
    )
    return path
