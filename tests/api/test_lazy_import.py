"""Import-time regressions: ``import repro`` must stay light.

The CLI parses ``--help`` and bad flags without touching the engine,
and ``import repro`` (the first line of every user script) must not
drag in heavy submodules.  Run in a subprocess so this test cannot be
poisoned by whatever the rest of the suite already imported.
"""

import json
import subprocess
import sys

HEAVY_MODULES = [
    "multiprocessing",
    "lzma",
    "bz2",
    "repro.core",
    "repro.core.compressor",
    "repro.core.streaming",
    "repro.archive",
    "repro.query",
    "repro.flows",
    "repro.synth",
]


def _loaded_after(statement: str) -> set[str]:
    code = (
        "import json, sys\n"
        f"{statement}\n"
        "print(json.dumps(sorted(sys.modules)))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
    )
    return set(json.loads(out.stdout))


class TestImportRepro:
    def test_pulls_no_heavy_submodule(self):
        loaded = _loaded_after("import repro")
        offenders = [name for name in HEAVY_MODULES if name in loaded]
        assert not offenders, f"import repro eagerly loaded: {offenders}"

    def test_version_without_engine(self):
        loaded = _loaded_after("import repro; repro.__version__")
        assert "repro.core" not in loaded

    def test_api_package_is_lazy_too(self):
        loaded = _loaded_after("import repro.api")
        offenders = [name for name in HEAVY_MODULES if name in loaded]
        assert not offenders, f"import repro.api eagerly loaded: {offenders}"

    def test_open_attribute_loads_engine_on_demand(self):
        loaded = _loaded_after("import repro; repro.open")
        assert "repro.api.store" in loaded  # resolved lazily, on access

    def test_submodule_attribute_access_still_works(self):
        # Pre-1.1 the eager imports bound submodules on the packages;
        # the lazy layout must keep that working.
        code = (
            "import repro, repro.core\n"
            "assert repro.core.codec.TIME_SEQ_RECORD_BYTES == 10\n"
            "assert repro.net.packet.PacketRecord is not None\n"
            "assert repro.api.errors.ReproError is not None\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr

    def test_public_names_still_importable(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro import Trace, PacketRecord, Options, open;"
                "assert callable(open)",
            ],
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr


class TestCliStartup:
    def test_cli_import_skips_the_engine(self):
        loaded = _loaded_after("import repro.cli")
        for name in ("repro.core.compressor", "multiprocessing", "repro.flows"):
            assert name not in loaded, f"repro.cli eagerly loaded {name}"

    def test_help_runs_without_engine_modules(self):
        code = (
            "import sys\n"
            "from repro.cli import main\n"
            "assert main(['--help']) == 0\n"
            "assert 'repro.core.compressor' not in sys.modules\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
