"""`repro.open` sniffing and the typed error contract of the façade.

The satellite requirement pinned here: a missing file, a truncated
``.fctc``, a wrong-suffix file and an empty trace must raise typed
:mod:`repro.api.errors` exceptions — never a bare ``OSError`` /
``struct.error`` escaping from the codec layer.
"""

import pytest

import repro
from repro import api
from repro.api import errors
from repro.api.sniff import SourceKind, sniff_kind


class TestSniffing:
    def test_tsh_by_content(self, tsh_path):
        assert sniff_kind(tsh_path) is SourceKind.TSH

    def test_pcap_by_content(self, pcap_path):
        assert sniff_kind(pcap_path) is SourceKind.PCAP

    def test_container_by_content(self, fctc_path):
        assert sniff_kind(fctc_path) is SourceKind.CONTAINER

    def test_archive_by_content(self, fctca_path):
        assert sniff_kind(fctca_path) is SourceKind.ARCHIVE

    def test_content_wins_over_missing_suffix(self, workdir, fctc_path):
        # A container under a neutral name still opens as a container.
        renamed = workdir / "container-no-suffix"
        renamed.write_bytes(fctc_path.read_bytes())
        assert sniff_kind(renamed) is SourceKind.CONTAINER
        assert isinstance(api.open(renamed), api.ContainerStore)

    def test_open_returns_matching_store(self, tsh_path, fctc_path, fctca_path):
        assert isinstance(api.open(tsh_path), api.TraceFileStore)
        assert isinstance(api.open(fctc_path), api.ContainerStore)
        with api.open(fctca_path) as store:
            assert isinstance(store, api.ArchiveStore)

    def test_repro_open_is_the_facade(self, tsh_path):
        store = repro.open(tsh_path)
        assert isinstance(store, api.TraceStore)


class TestTypedErrors:
    def test_missing_file(self, workdir):
        with pytest.raises(errors.MissingInputError) as excinfo:
            api.open(workdir / "does-not-exist.tsh")
        # Also a FileNotFoundError, so pre-façade handlers keep working.
        assert isinstance(excinfo.value, FileNotFoundError)
        assert excinfo.value.filename == str(workdir / "does-not-exist.tsh")

    def test_empty_trace(self, workdir):
        empty = workdir / "empty.tsh"
        empty.write_bytes(b"")
        with pytest.raises(errors.EmptyTraceError):
            api.open(empty)

    @pytest.mark.parametrize(
        "name", ["empty-no-suffix", "empty.pcap", "empty.fctc", "empty.fctca"]
    )
    def test_empty_file_is_empty_not_unknown(self, workdir, name):
        """Zero bytes is a typed EmptyTraceError under *any* name —
        never misreported as an unrecognized format."""
        empty = workdir / name
        empty.write_bytes(b"")
        with pytest.raises(errors.EmptyTraceError) as excinfo:
            api.open(empty)
        assert not isinstance(excinfo.value, errors.UnknownFormatError)
        assert name in str(excinfo.value)

    def test_empty_pcap_no_packets(self, workdir, trace):
        header_only = workdir / "hdr.pcap"
        full = workdir / "full-tmp.pcap"
        trace.save_pcap(full)
        header_only.write_bytes(full.read_bytes()[:24])  # global header only
        with pytest.raises(errors.EmptyTraceError):
            api.open(header_only)

    def test_truncated_container(self, workdir, fctc_path):
        truncated = workdir / "trunc.fctc"
        truncated.write_bytes(fctc_path.read_bytes()[:-7])
        with pytest.raises(errors.CorruptInputError) as excinfo:
            api.open(truncated)
        assert "truncated" in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)

    def test_truncated_archive(self, workdir, fctca_path):
        truncated = workdir / "trunc.fctca"
        truncated.write_bytes(fctca_path.read_bytes()[:-11])
        with pytest.raises(errors.CorruptInputError):
            api.open(truncated)

    def test_wrong_suffix_container(self, workdir):
        bogus = workdir / "bogus.fctc"
        bogus.write_bytes(b"this is not a container")
        with pytest.raises(errors.UnknownFormatError) as excinfo:
            api.open(bogus)
        assert "magic" in str(excinfo.value)

    def test_wrong_suffix_crossed_formats(self, workdir, fctca_path):
        # Archive bytes under a container suffix: mismatch, not a guess.
        crossed = workdir / "crossed.fctc"
        crossed.write_bytes(fctca_path.read_bytes())
        with pytest.raises(errors.UnknownFormatError) as excinfo:
            api.open(crossed)
        assert "suffix" in str(excinfo.value)

    def test_unaligned_garbage(self, workdir):
        garbage = workdir / "garbage.tsh"
        garbage.write_bytes(b"\x00" * 50)  # not a multiple of 44
        with pytest.raises(errors.UnknownFormatError):
            api.open(garbage)

    def test_every_error_is_a_repro_error(self):
        for klass in (
            errors.MissingInputError,
            errors.UnknownFormatError,
            errors.CorruptInputError,
            errors.EmptyTraceError,
            errors.CapabilityError,
            errors.OptionsError,
        ):
            assert issubclass(klass, errors.ReproError)
