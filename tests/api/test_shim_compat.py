"""The 1.1 deprecation shims: warn once, stay byte-identical to the façade.

The acceptance contract of the API redesign: every deprecated entry
point must produce *byte-identical* output to the façade path that
replaces it, for the whole deprecation window.  These tests are the
pin; if a shim and the façade ever diverge, this file fails before any
user notices.
"""

import warnings

import pytest

from repro import api
from repro.archive.writer import build_archive
from repro.core.pipeline import (
    compress_stream_to_bytes,
    compress_to_bytes,
    decompress_from_bytes,
    roundtrip,
)
from repro.query.engine import filter_archive, query_archive
from repro.trace.reader import iter_tsh_packets
from repro.trace.trace import Trace


def _shim(callable_, *args, **kwargs):
    """Call a shim asserting it warns exactly one DeprecationWarning."""
    with pytest.warns(DeprecationWarning, match="deprecated"):
        return callable_(*args, **kwargs)


class TestEveryShimWarns:
    def test_all_seven(self, trace, tsh_path, fctca_path, tmp_path):
        _shim(compress_to_bytes, trace)
        _shim(compress_stream_to_bytes, iter(trace.packets))
        data, _ = _shim(compress_to_bytes, trace)
        _shim(decompress_from_bytes, data)
        _shim(roundtrip, trace)
        _shim(
            build_archive, tmp_path / "shim.fctca", iter_tsh_packets(tsh_path)
        )
        _shim(query_archive, fctca_path)
        _shim(filter_archive, fctca_path, tmp_path / "filtered.fctca")


class TestByteIdentity:
    def test_compress_to_bytes_vs_store_compress(self, tsh_path, tmp_path):
        # Same input for both paths: the on-disk trace (TSH quantizes
        # timestamps, so the pre-save in-memory trace is *not* it).
        shim_bytes, _ = _shim(compress_to_bytes, Trace.load_tsh(tsh_path))
        facade_out = tmp_path / "facade.fctc"
        with api.open(tsh_path) as store:
            store.compress(facade_out)
        assert facade_out.read_bytes() == shim_bytes

    def test_compress_stream_to_bytes_vs_store_compress(
        self, tsh_path, tmp_path
    ):
        shim_bytes, _ = _shim(
            compress_stream_to_bytes, iter_tsh_packets(tsh_path), name="t"
        )
        facade_out = tmp_path / "facade-stream.fctc"
        with api.open(
            tsh_path, options=api.Options(name="t")
        ) as store:
            store.compress(
                facade_out, options=api.Options.make(stream=True, name="t")
            )
        assert facade_out.read_bytes() == shim_bytes

    def test_decompress_from_bytes_vs_store_packets(self, fctc_path):
        shim_trace = _shim(decompress_from_bytes, fctc_path.read_bytes())
        with api.open(fctc_path) as store:
            facade_packets = list(store.packets())
        assert shim_trace.packets == facade_packets

    def test_roundtrip_vs_api_roundtrip(self, trace):
        shim_trace, shim_report = _shim(roundtrip, trace)
        facade_trace, facade_report = api.roundtrip(trace)
        assert shim_trace.packets == facade_trace.packets
        assert shim_report == facade_report

    def test_build_archive_vs_create_archive(self, tsh_path, tmp_path):
        shim_out = tmp_path / "shim-build.fctca"
        facade_out = tmp_path / "facade-build.fctca"
        _shim(
            build_archive,
            shim_out,
            iter_tsh_packets(tsh_path),
            segment_span=1.0,
            name="t",
        )
        api.create_archive(
            facade_out,
            [tsh_path],
            options=api.Options.make(segment_span=1.0, name="t"),
        )
        assert shim_out.read_bytes() == facade_out.read_bytes()

    def test_query_archive_vs_store_query(self, fctca_path):
        predicate = api.TimeRange(0.0, 1.0)
        shim_result = _shim(query_archive, fctca_path, predicate)
        with api.open(fctca_path) as store:
            facade_result = store.query(predicate)
        assert shim_result.flows == facade_result.flows

    def test_filter_archive_vs_store_filter(self, fctca_path, tmp_path):
        predicate = api.TimeRange(0.0, 1.0)
        shim_out = tmp_path / "shim-filter.fctca"
        facade_out = tmp_path / "facade-filter.fctca"
        shim_written, _ = _shim(filter_archive, fctca_path, shim_out, predicate)
        with api.open(fctca_path) as store:
            facade_written, _ = store.filter(facade_out, predicate)
        assert shim_written == facade_written
        assert shim_out.read_bytes() == facade_out.read_bytes()


class TestInternalCodeIsMigrated:
    def test_facade_paths_raise_no_deprecation(self, tsh_path, tmp_path):
        """The façade itself must never route through a shim."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with api.open(tsh_path) as store:
                store.compress(tmp_path / "clean.fctc")
                store.compress(
                    tmp_path / "clean.fctca",
                    options=api.Options.make(segment_span=1.0),
                )
                list(store.flows())
            with api.open(tmp_path / "clean.fctca") as store:
                store.query(api.MatchAll())
                store.export(tmp_path / "clean.tsh")

    def test_api_roundtrip_warns_nothing(self, trace):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.roundtrip(trace)
