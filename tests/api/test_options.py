"""Validation and layering of the unified :class:`repro.api.Options`."""

import dataclasses

import pytest

from repro.api import errors
from repro.api.options import (
    ArchiveOptions,
    CodecOptions,
    Options,
    StreamingOptions,
)


class TestDefaults:
    def test_zero_arg_options_is_the_historic_default(self):
        options = Options()
        assert options.codec.backend is None  # raw, the paper's format
        assert options.streaming.mode == "auto"
        assert options.streaming.workers == 1
        assert options.archive.segment_packets == 65536
        assert options.archive.segment_span == 60.0
        assert options.compressor.short_flow_max == 50

    def test_production_preset(self):
        options = Options.production()
        assert options.codec.backend == "zlib"
        assert options.streaming.mode == "stream"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            Options().name = "x"


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(errors.OptionsError):
            CodecOptions(backend="snappy")

    def test_bad_level_on_named_backend(self):
        with pytest.raises(errors.OptionsError):
            CodecOptions(backend="zlib", level=99)

    def test_level_advisory_without_backend(self):
        assert CodecOptions(backend=None, level=99).level == 99

    def test_bad_mode(self):
        with pytest.raises(errors.OptionsError):
            StreamingOptions(mode="turbo")

    def test_bad_workers(self):
        with pytest.raises(errors.OptionsError):
            StreamingOptions(workers=0)

    def test_bad_chunk(self):
        with pytest.raises(errors.OptionsError):
            StreamingOptions(chunk_packets=0)

    def test_stream_mode_refuses_parallel(self):
        with pytest.raises(errors.OptionsError):
            StreamingOptions(mode="stream", workers=2)

    def test_bad_segment_bounds(self):
        with pytest.raises(errors.OptionsError):
            ArchiveOptions(segment_packets=0)
        with pytest.raises(errors.OptionsError):
            ArchiveOptions(segment_span=0.0)

    def test_options_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            StreamingOptions(workers=-1)


class TestMake:
    def test_flat_knobs_land_in_layers(self):
        options = Options.make(
            backend="zlib",
            level=6,
            workers=4,
            segment_span=5.0,
            name="custom",
        )
        assert options.codec.backend == "zlib"
        assert options.codec.level == 6
        assert options.streaming.workers == 4
        assert options.archive.segment_span == 5.0
        assert options.name == "custom"

    def test_stream_flag_sets_mode(self):
        assert Options.make(stream=True).streaming.mode == "stream"

    def test_chunk_knob_implies_streaming(self):
        assert Options.make(chunk_packets=64).streaming.mode == "stream"

    def test_single_worker_implies_streaming(self):
        # Historic CLI semantics: --workers 1 streams without a pool.
        assert Options.make(workers=1).streaming.mode == "stream"

    def test_multi_worker_keeps_auto(self):
        assert Options.make(workers=3).streaming.mode == "auto"

    def test_stream_contradicting_mode(self):
        with pytest.raises(errors.OptionsError):
            Options.make(stream=True, mode="batch")

    def test_with_codec(self):
        options = Options().with_codec("bz2", 5)
        assert options.codec.backend == "bz2"
        assert options.codec.level == 5
        assert options.streaming == Options().streaming
