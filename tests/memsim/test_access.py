"""Tests for the checkpointed access recorder."""

import pytest

from repro.memsim.access import AccessRecorder


class TestCheckpoints:
    def test_per_packet_counts(self):
        recorder = AccessRecorder()
        for count in (3, 0, 5):
            recorder.begin_packet()
            for address in range(count):
                recorder.record(0x1000 + address)
            recorder.end_packet()
        assert recorder.accesses_per_packet() == [3, 0, 5]
        assert recorder.packet_count == 3
        assert recorder.total_accesses == 8

    def test_unbalanced_begin_rejected(self):
        recorder = AccessRecorder()
        recorder.begin_packet()
        with pytest.raises(RuntimeError):
            recorder.begin_packet()

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError):
            AccessRecorder().end_packet()

    def test_record_many(self):
        recorder = AccessRecorder()
        recorder.begin_packet()
        recorder.record_many([1, 2, 3])
        recorder.end_packet()
        assert recorder.accesses_per_packet() == [3]


class TestTraces:
    def test_packet_trace_slice(self):
        recorder = AccessRecorder()
        recorder.begin_packet()
        recorder.record(10)
        recorder.end_packet()
        recorder.begin_packet()
        recorder.record(20)
        recorder.record(30)
        recorder.end_packet()
        trace = recorder.packet_trace(1)
        assert list(trace.addresses) == [20, 30]
        assert trace.access_count == 2

    def test_iter_packets(self):
        recorder = AccessRecorder()
        for base in (100, 200):
            recorder.begin_packet()
            recorder.record(base)
            recorder.end_packet()
        slices = list(recorder.iter_packets())
        assert [list(s.addresses) for s in slices] == [[100], [200]]

    def test_flat_addresses(self):
        recorder = AccessRecorder()
        recorder.begin_packet()
        recorder.record(1)
        recorder.end_packet()
        recorder.begin_packet()
        recorder.record(2)
        recorder.end_packet()
        assert list(recorder.flat_addresses()) == [1, 2]
