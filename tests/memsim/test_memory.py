"""Tests for the simulated heap."""

import pytest

from repro.memsim.memory import SimulatedHeap


class TestAllocation:
    def test_alloc_returns_distinct_addresses(self):
        heap = SimulatedHeap()
        addresses = [heap.alloc(32) for _ in range(100)]
        assert len(set(addresses)) == 100

    def test_alignment(self):
        heap = SimulatedHeap(alignment=8)
        a = heap.alloc(5)
        b = heap.alloc(5)
        assert a % 8 == 0
        assert b - a == 8

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            SimulatedHeap().alloc(0)

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            SimulatedHeap(alignment=3)

    def test_live_accounting(self):
        heap = SimulatedHeap()
        address = heap.alloc(32, label="node")
        assert heap.live_allocations() == 1
        assert heap.live_bytes() == 32
        heap.free(address)
        assert heap.live_allocations() == 0
        assert heap.live_bytes() == 0


class TestFreeList:
    def test_freed_block_reused(self):
        heap = SimulatedHeap()
        first = heap.alloc(48)
        heap.free(first)
        second = heap.alloc(48)
        assert second == first
        assert heap.reuse_count == 1

    def test_lifo_reuse_order(self):
        heap = SimulatedHeap()
        a = heap.alloc(32)
        b = heap.alloc(32)
        heap.free(a)
        heap.free(b)
        assert heap.alloc(32) == b  # most recently freed first
        assert heap.alloc(32) == a

    def test_size_classes_separate(self):
        heap = SimulatedHeap()
        small = heap.alloc(16)
        heap.free(small)
        large = heap.alloc(64)
        assert large != small

    def test_double_free_rejected(self):
        heap = SimulatedHeap()
        address = heap.alloc(32)
        heap.free(address)
        with pytest.raises(ValueError, match="free"):
            heap.free(address)

    def test_footprint_is_high_water_mark(self):
        heap = SimulatedHeap()
        a = heap.alloc(32)
        heap.free(a)
        heap.alloc(32)  # reuses, no growth
        assert heap.footprint_bytes() == 32


class TestOwnerLookup:
    def test_owner_of(self):
        heap = SimulatedHeap()
        address = heap.alloc(32, label="radix-node")
        allocation = heap.owner_of(address + 8)
        assert allocation is not None
        assert allocation.label == "radix-node"

    def test_owner_of_unknown(self):
        assert SimulatedHeap().owner_of(0xDEAD) is None
