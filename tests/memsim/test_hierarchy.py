"""Tests for the two-level cache hierarchy."""

import pytest

from repro.memsim.cache import CacheConfig
from repro.memsim.hierarchy import CacheHierarchy, HierarchyConfig


def small_hierarchy() -> CacheHierarchy:
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(size_bytes=128, line_bytes=32, associativity=1),
            l2=CacheConfig(size_bytes=512, line_bytes=32, associativity=2),
        )
    )


class TestConfig:
    def test_l2_must_dominate_l1(self):
        with pytest.raises(ValueError):
            HierarchyConfig(
                l1=CacheConfig(size_bytes=1024, line_bytes=32, associativity=2),
                l2=CacheConfig(size_bytes=512, line_bytes=32, associativity=2),
            )


class TestAccessPath:
    def test_cold_goes_to_memory(self):
        hierarchy = small_hierarchy()
        assert hierarchy.access(0x1000) == "memory"

    def test_warm_hits_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0x1000)
        assert hierarchy.access(0x1000) == "l1"

    def test_l1_victim_still_in_l2(self):
        hierarchy = small_hierarchy()  # L1: 4 sets x 1 way
        hierarchy.access(0)      # L1 set 0
        hierarchy.access(128)    # L1 set 0, evicts line 0 from L1
        assert hierarchy.access(0) == "l2"  # gone from L1, kept by L2

    def test_l2_only_sees_l1_misses(self):
        hierarchy = small_hierarchy()
        for _ in range(10):
            hierarchy.access(0x2000)
        stats = hierarchy.stats
        assert stats.l1.accesses == 10
        assert stats.l2.accesses == 1  # the single cold miss


class TestStatistics:
    def test_global_miss_rate(self):
        hierarchy = small_hierarchy()
        burst = hierarchy.replay([0, 0, 0, 4096])
        assert burst.l1.accesses == 4
        assert burst.l1.misses == 2
        assert burst.l2.misses == 2
        assert burst.global_miss_rate == pytest.approx(0.5)

    def test_l2_local_miss_rate(self):
        hierarchy = small_hierarchy()
        burst = hierarchy.replay([0, 128, 0, 128])  # L1 ping-pong, L2 holds
        assert burst.l2.accesses == 4
        assert burst.l2.misses == 2
        assert burst.l2_local_miss_rate == pytest.approx(0.5)

    def test_empty_replay(self):
        hierarchy = small_hierarchy()
        burst = hierarchy.replay([])
        assert burst.global_miss_rate == 0.0

    def test_flush(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0)
        hierarchy.flush()
        assert hierarchy.access(0) == "memory"


class TestInclusionBehaviour:
    def test_l2_never_misses_more_than_l1(self):
        hierarchy = small_hierarchy()
        addresses = [(i * 32) % 2048 for i in range(500)]
        burst = hierarchy.replay(addresses)
        assert burst.l2.misses <= burst.l1.misses
        assert burst.l2.accesses == burst.l1.misses
