"""Tests for the Figure 2/3 metric aggregation."""

import pytest

from repro.memsim.access import AccessRecorder
from repro.memsim.cache import CacheConfig
from repro.memsim.metrics import (
    MISS_RATE_BUCKETS,
    PacketMemoryMetrics,
    TraceMemoryProfile,
    bucket_miss_rates,
    profile_from_recorder,
)


def profile_of(metrics) -> TraceMemoryProfile:
    return TraceMemoryProfile("test", list(metrics))


class TestPacketMetrics:
    def test_miss_rate(self):
        assert PacketMemoryMetrics(0, 10, 2).miss_rate == pytest.approx(0.2)

    def test_zero_accesses(self):
        assert PacketMemoryMetrics(0, 0, 0).miss_rate == 0.0


class TestBuckets:
    def test_bucket_edges_match_figure3(self):
        assert MISS_RATE_BUCKETS[0] == (0.00, 0.05)
        assert MISS_RATE_BUCKETS[-1][0] == 0.20

    def test_bucketing(self):
        shares = bucket_miss_rates([0.0, 0.04, 0.07, 0.15, 0.5, 1.0])
        assert shares == pytest.approx([2 / 6 * 100, 1 / 6 * 100, 1 / 6 * 100, 2 / 6 * 100])

    def test_boundary_goes_up(self):
        # 0.05 belongs to the 5-10% bucket (half-open intervals).
        shares = bucket_miss_rates([0.05])
        assert shares[1] == 100.0

    def test_empty(self):
        assert bucket_miss_rates([]) == [0.0, 0.0, 0.0, 0.0]

    def test_shares_sum_to_100(self):
        shares = bucket_miss_rates([0.01 * i for i in range(100)])
        assert sum(shares) == pytest.approx(100.0)


class TestTraceProfile:
    def test_aggregates(self):
        profile = profile_of(
            [
                PacketMemoryMetrics(0, 10, 1),
                PacketMemoryMetrics(1, 20, 4),
            ]
        )
        assert profile.mean_accesses() == 15.0
        assert profile.overall_miss_rate() == pytest.approx(5 / 30)
        assert profile.access_counts() == [10, 20]

    def test_cumulative_traffic(self):
        profile = profile_of(
            PacketMemoryMetrics(i, accesses, 0)
            for i, accesses in enumerate([50, 60, 60, 100])
        )
        assert profile.cumulative_traffic_by_accesses([49, 50, 60, 100]) == [
            0.0, 25.0, 75.0, 100.0,
        ]

    def test_empty_profile(self):
        profile = profile_of([])
        assert profile.mean_accesses() == 0.0
        assert profile.overall_miss_rate() == 0.0
        assert profile.cumulative_traffic_by_accesses([10]) == [0.0]


class TestProfileFromRecorder:
    def test_replay_assigns_misses_per_packet(self):
        recorder = AccessRecorder()
        # Packet 0 touches two lines (two cold misses).
        recorder.begin_packet()
        recorder.record_many([0, 64])
        recorder.end_packet()
        # Packet 1 touches the same lines (hits).
        recorder.begin_packet()
        recorder.record_many([0, 64])
        recorder.end_packet()
        profile = profile_from_recorder(
            "t", recorder, CacheConfig(1024, 32, 2)
        )
        assert profile.packets[0].misses == 2
        assert profile.packets[1].misses == 0
        assert profile.name == "t"
