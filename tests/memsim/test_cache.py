"""Tests for the set-associative LRU cache simulator."""

import pytest

from repro.memsim.cache import CacheConfig, SetAssociativeCache


class TestConfig:
    def test_set_count(self):
        config = CacheConfig(size_bytes=16 * 1024, line_bytes=32, associativity=2)
        assert config.set_count == 256

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=48)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=32, associativity=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(CacheConfig(1024, 32, 2))
        assert cache.access(0x1000) is False  # cold miss
        assert cache.access(0x1000) is True   # now resident

    def test_same_line_hits(self):
        cache = SetAssociativeCache(CacheConfig(1024, 32, 2))
        cache.access(0x1000)
        assert cache.access(0x101F) is True  # same 32-byte line
        assert cache.access(0x1020) is False  # next line

    def test_stats(self):
        cache = SetAssociativeCache(CacheConfig(1024, 32, 2))
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(2 / 3)


class TestLruReplacement:
    def direct_mapped(self) -> SetAssociativeCache:
        return SetAssociativeCache(CacheConfig(size_bytes=64, line_bytes=32, associativity=1))

    def test_conflict_eviction(self):
        cache = self.direct_mapped()  # 2 sets of 1 way
        cache.access(0)      # set 0
        cache.access(64)     # set 0, evicts line 0
        assert cache.access(0) is False  # was evicted

    def test_two_way_keeps_both(self):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=128, line_bytes=32, associativity=2)
        )  # 2 sets of 2 ways
        cache.access(0)
        cache.access(64)   # same set, second way
        assert cache.access(0) is True
        assert cache.access(64) is True

    def test_lru_victim_selection(self):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=64, line_bytes=32, associativity=2)
        )  # 1 set, 2 ways
        cache.access(0)
        cache.access(32)
        cache.access(0)      # refresh line 0: LRU is now line 32
        cache.access(64)     # evicts line 32
        assert cache.access(0) is True
        assert cache.access(32) is False


class TestReplayAndFlush:
    def test_replay_reports_burst_stats(self):
        cache = SetAssociativeCache(CacheConfig(1024, 32, 2))
        burst = cache.replay([0, 0, 32, 32])
        assert burst.accesses == 4
        assert burst.misses == 2

    def test_replay_accumulates_global_stats(self):
        cache = SetAssociativeCache(CacheConfig(1024, 32, 2))
        cache.replay([0, 32])
        cache.replay([0])
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2

    def test_flush_empties_but_keeps_stats(self):
        cache = SetAssociativeCache(CacheConfig(1024, 32, 2))
        cache.access(0)
        cache.flush()
        assert cache.resident_lines() == 0
        assert cache.stats.accesses == 1
        assert cache.access(0) is False

    def test_working_set_larger_than_cache_thrashes(self):
        cache = SetAssociativeCache(CacheConfig(size_bytes=256, line_bytes=32, associativity=1))
        addresses = [i * 32 for i in range(16)]  # 512 B working set
        cache.replay(addresses)
        second_pass = cache.replay(addresses)
        # Sequential sweep over 2x the cache: every access misses.
        assert second_pass.misses == 16
