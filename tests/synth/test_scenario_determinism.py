"""Seed-determinism regression: golden digests for every scenario.

Each registered scenario must generate the exact same packet sequence
for a given ``(duration, flow_rate, seed)`` forever.  The digests below
were computed when the scenario landed; a mismatch means a generator's
draw sequence changed — which silently invalidates every archived
trace, benchmark floor, and fidelity report keyed to that scenario.
If a change is *deliberate* (a generator bug fix), re-pin the digest in
the same commit and say so in the message.

The parameters are chosen so every scenario's digest is distinct: at
tiny durations the two CDF scenarios can sample only short flows and
collapse onto identical traces, which would let a dispatch mix-up pass.
"""

import hashlib

import pytest

from repro.synth.scenarios import get_scenario, scenario_names
from repro.trace.tsh import write_tsh_bytes

DURATION = 2.5
FLOW_RATE = 32.0
SEED = 1234

# scenario -> (blake2b-128 of the TSH serialization, packet count)
GOLDEN = {
    "web": ("a01c06bd1bb1a3ebb7710090745d79b3", 944),
    "p2p": ("513439a76efcac8f78238dd636b7d6b7", 6248),
    "web-search": ("78ad4e594dab8caf52e4c166d9add16c", 1936),
    "data-mining": ("83810b6ad608f56a044fb006469bd08a", 12992),
    "mixed-protocol": ("42503225e3056a90a4fd729d025ff672", 1570),
    "flood": ("45a7be5188bfd16526ebbe3cc0ad9547", 1208),
    "mptcp": ("cc66603a3157bc307223e88927a7db04", 1260),
}


def trace_digest(packets) -> str:
    return hashlib.blake2b(
        write_tsh_bytes(packets), digest_size=16
    ).hexdigest()


def test_golden_table_covers_every_registered_scenario():
    assert set(GOLDEN) == set(scenario_names())


def test_golden_digests_are_distinct():
    digests = [digest for digest, _ in GOLDEN.values()]
    assert len(set(digests)) == len(digests)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_scenario_matches_golden(name):
    trace = get_scenario(name).build(
        duration=DURATION, flow_rate=FLOW_RATE, seed=SEED
    )
    expected_digest, expected_packets = GOLDEN[name]
    assert len(trace.packets) == expected_packets
    assert trace_digest(trace.packets) == expected_digest
