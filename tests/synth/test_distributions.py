"""Tests for the traffic-model distributions."""

import math
import random

import pytest

from repro.synth.distributions import (
    BoundedPareto,
    DiscreteDistribution,
    Exponential,
    LogNormal,
    Zipf,
)


class TestBoundedPareto:
    def test_samples_in_bounds(self):
        dist = BoundedPareto(alpha=1.2, xmin=1.0, xmax=100.0)
        rng = random.Random(1)
        for _ in range(2000):
            assert 1.0 <= dist.sample(rng) <= 100.0

    def test_sample_mean_tracks_analytic_mean(self):
        dist = BoundedPareto(alpha=1.5, xmin=2.0, xmax=500.0)
        rng = random.Random(2)
        samples = [dist.sample(rng) for _ in range(40000)]
        assert sum(samples) / len(samples) == pytest.approx(
            dist.mean(), rel=0.05
        )

    def test_heavier_tail_bigger_mean(self):
        light = BoundedPareto(alpha=2.5, xmin=1.0, xmax=1000.0)
        heavy = BoundedPareto(alpha=1.1, xmin=1.0, xmax=1000.0)
        assert heavy.mean() > light.mean()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=0.0, xmin=1.0, xmax=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, xmin=5.0, xmax=2.0)


class TestLogNormal:
    def test_from_median(self):
        dist = LogNormal.from_median_sigma(0.06, 0.5)
        rng = random.Random(3)
        samples = sorted(dist.sample(rng) for _ in range(10001))
        assert samples[5000] == pytest.approx(0.06, rel=0.1)

    def test_mean_formula(self):
        dist = LogNormal(mu=0.0, sigma=1.0)
        assert dist.mean() == pytest.approx(math.exp(0.5))

    def test_positive_samples(self):
        dist = LogNormal.from_median_sigma(1.0, 2.0)
        rng = random.Random(4)
        assert all(dist.sample(rng) > 0 for _ in range(100))

    def test_invalid(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, -1.0)
        with pytest.raises(ValueError):
            LogNormal.from_median_sigma(0.0, 1.0)


class TestExponential:
    def test_mean(self):
        dist = Exponential(rate=4.0)
        rng = random.Random(5)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(0.25, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(rate=0.0)


class TestZipf:
    def test_rank_zero_most_popular(self):
        dist = Zipf(100, 1.0)
        rng = random.Random(6)
        counts = [0] * 100
        for _ in range(20000)            :
            counts[dist.sample(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > counts[50]

    def test_probability_matches_definition(self):
        dist = Zipf(3, 1.0)
        total = 1.0 + 0.5 + 1 / 3
        assert dist.probability(0) == pytest.approx(1.0 / total)
        assert dist.probability(2) == pytest.approx((1 / 3) / total)

    def test_probabilities_sum_to_one(self):
        dist = Zipf(50, 0.8)
        assert sum(dist.probability(r) for r in range(50)) == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        dist = Zipf(10, 0.0)
        assert dist.probability(0) == pytest.approx(0.1)
        assert dist.probability(9) == pytest.approx(0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Zipf(0)
        with pytest.raises(ValueError):
            Zipf(5, -1.0)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            Zipf(5).probability(5)


class TestDiscreteDistribution:
    def test_sampling_respects_pmf(self):
        dist = DiscreteDistribution({1: 0.9, 100: 0.1})
        rng = random.Random(7)
        samples = [dist.sample(rng) for _ in range(10000)]
        ones = samples.count(1) / len(samples)
        assert ones == pytest.approx(0.9, abs=0.02)

    def test_normalizes(self):
        dist = DiscreteDistribution({1: 2.0, 2: 2.0})
        assert dist.probability(1) == pytest.approx(0.5)

    def test_mean(self):
        dist = DiscreteDistribution({2: 0.5, 4: 0.5})
        assert dist.mean() == pytest.approx(3.0)

    def test_values_sorted(self):
        dist = DiscreteDistribution({5: 0.1, 1: 0.9})
        assert dist.values() == (1, 5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            DiscreteDistribution({})
        with pytest.raises(ValueError):
            DiscreteDistribution({1: -0.5})
