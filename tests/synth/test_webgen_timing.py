"""Timing-semantics tests for the Web generator's TCP model."""

import pytest

from repro.flows.assembler import assemble_flows
from repro.flows.model import Direction
from repro.synth.webgen import WebTrafficConfig, WebTrafficGenerator


def single_simple_flow(seed=1):
    config = WebTrafficConfig(
        duration=0.5, flow_rate=4.0, seed=seed,
        aborted_prob=0.0, persistent_prob=0.0,
    )
    trace = WebTrafficGenerator(config).generate()
    flows = assemble_flows(trace.packets)
    assert flows, "expected at least one flow in 0.5s at 4 flows/s"
    return flows[0]


class TestHandshakeTiming:
    def test_syn_synack_gap_is_rtt(self):
        flow = single_simple_flow()
        rtt = flow.packets[1].timestamp - flow.packets[0].timestamp
        ack_gap = flow.packets[2].timestamp - flow.packets[1].timestamp
        # SYN->SYN+ACK and SYN+ACK->ACK both take one RTT.
        assert rtt == pytest.approx(ack_gap, rel=1e-6)
        assert rtt >= 0.002

    def test_request_rides_behind_handshake(self):
        flow = single_simple_flow()
        gap = flow.packets[3].timestamp - flow.packets[2].timestamp
        assert gap == pytest.approx(0.0002, abs=1e-9)


class TestSlowStart:
    def test_bursts_double(self):
        flow = single_simple_flow(seed=11)
        # Collect the server-side data bursts: runs of s2c data packets.
        burst_sizes = []
        current = 0
        for flow_packet in flow.packets:
            is_data = (
                flow_packet.direction is Direction.SERVER_TO_CLIENT
                and flow_packet.payload_len > 1000
            )
            if is_data:
                current += 1
            elif current:
                burst_sizes.append(current)
                current = 0
        if current:
            burst_sizes.append(current)
        if len(burst_sizes) >= 3:
            # cwnd doubles: 2, 4, 8 ... until remaining or cap.
            assert burst_sizes[0] == 2
            assert burst_sizes[1] in (3, 4)

    def test_acks_follow_one_rtt_after_burst(self):
        flow = single_simple_flow(seed=11)
        packets = flow.packets
        rtt = packets[1].timestamp - packets[0].timestamp
        # First data packet is packets[4]; the client ACK that answers
        # the first burst must trail its burst start by >= one RTT.
        first_data_index = next(
            i for i, fp in enumerate(packets)
            if fp.direction is Direction.SERVER_TO_CLIENT and fp.payload_len > 1000
        )
        following_ack_index = next(
            i for i, fp in enumerate(packets[first_data_index:], first_data_index)
            if fp.direction is Direction.CLIENT_TO_SERVER and fp.payload_len == 0
        )
        delay = (
            packets[following_ack_index].timestamp
            - packets[first_data_index].timestamp
        )
        assert delay == pytest.approx(rtt, rel=0.2)


class TestFlowDurationModel:
    def test_decompression_timing_within_factor(self, small_web_trace):
        """The paper's RTT model stretches flows; the stretch must stay
        bounded (the slow-start generator keeps it ~2x)."""
        from repro.core import roundtrip
        from repro.flows.assembler import assemble_flows as assemble

        decompressed, _ = roundtrip(small_web_trace)
        original_flows = assemble(small_web_trace.packets)
        decompressed_flows = assemble(decompressed.packets)
        original_mean = sum(f.duration() for f in original_flows) / len(
            original_flows
        )
        decompressed_mean = sum(f.duration() for f in decompressed_flows) / len(
            decompressed_flows
        )
        assert decompressed_mean < 3.0 * original_mean
