"""Tests for the multiplicative-cascade address generator."""

import random

import pytest

from repro.synth.fractal import MultiplicativeCascade


class TestCascade:
    def test_addresses_32_bit(self):
        cascade = MultiplicativeCascade()
        rng = random.Random(1)
        for _ in range(200):
            assert 0 <= cascade.sample(rng) <= 0xFFFFFFFF

    def test_bias_concentrates_high_bits(self):
        # p=0.9: the MSB should be 0 about 90% of the time.
        cascade = MultiplicativeCascade(p=0.9, jitter=0.0)
        rng = random.Random(2)
        zeros = sum(
            1 for _ in range(5000) if cascade.sample(rng) < 0x80000000
        )
        assert zeros / 5000 == pytest.approx(0.9, abs=0.03)

    def test_nonuniform_distribution(self):
        # The cascade clumps addresses: the top /8 octet histogram should
        # be far from uniform.
        cascade = MultiplicativeCascade(p=0.75)
        rng = random.Random(3)
        buckets = [0] * 256
        for _ in range(10000):
            buckets[cascade.sample(rng) >> 24] += 1
        assert max(buckets) > 20 * (10000 / 256)

    def test_sample_many(self):
        cascade = MultiplicativeCascade()
        rng = random.Random(4)
        assert len(cascade.sample_many(rng, 17)) == 17

    def test_sample_many_rejects_negative(self):
        with pytest.raises(ValueError):
            MultiplicativeCascade().sample_many(random.Random(1), -1)

    def test_deterministic_biases(self):
        a = MultiplicativeCascade(seed=9)
        b = MultiplicativeCascade(seed=9)
        rng_a, rng_b = random.Random(5), random.Random(5)
        assert a.sample_many(rng_a, 50) == b.sample_many(rng_b, 50)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(p=0.0), dict(p=1.0), dict(jitter=0.5), dict(levels=0), dict(levels=33)],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            MultiplicativeCascade(**kwargs)
