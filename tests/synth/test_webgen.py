"""Tests for the synthetic Web traffic generator."""

import pytest

from repro.flows.assembler import assemble_flows
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN, classify_flags, FlagClass
from repro.synth.webgen import (
    WebTrafficConfig,
    WebTrafficGenerator,
    generate_web_trace,
)
from repro.trace.filters import is_web_packet
from repro.trace.stats import compute_statistics


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_web_trace(duration=3, flow_rate=20, seed=5)
        b = generate_web_trace(duration=3, flow_rate=20, seed=5)
        assert len(a) == len(b)
        assert [p.src_ip for p in a] == [p.src_ip for p in b]
        assert [p.timestamp for p in a] == [p.timestamp for p in b]

    def test_different_seed_different_trace(self):
        a = generate_web_trace(duration=3, flow_rate=20, seed=5)
        b = generate_web_trace(duration=3, flow_rate=20, seed=6)
        assert [p.src_ip for p in a] != [p.src_ip for p in b]


class TestTraceShape:
    def test_time_ordered(self, small_web_trace):
        assert small_web_trace.is_time_ordered()

    def test_all_web_packets(self, small_web_trace):
        assert all(is_web_packet(p) for p in small_web_trace.packets)

    def test_flow_rate_respected(self):
        trace = generate_web_trace(duration=20, flow_rate=10, seed=8)
        stats = compute_statistics(trace)
        # ~200 flows expected; Poisson noise allows a wide band.
        assert 140 < stats.flow_count < 260

    def test_flows_well_formed_tcp(self, small_web_trace):
        flows = assemble_flows(small_web_trace.packets)
        for flow in flows[:50]:
            first = flow.packets[0].packet
            assert classify_flags(first.flags) is FlagClass.SYN
            assert flow.is_terminated()

    def test_section3_statistics(self):
        trace = generate_web_trace(duration=60, flow_rate=40, seed=11)
        stats = compute_statistics(trace)
        assert stats.short_flow_fraction == pytest.approx(0.98, abs=0.03)
        assert stats.short_packet_fraction == pytest.approx(0.75, abs=0.08)
        assert stats.short_byte_fraction == pytest.approx(0.80, abs=0.08)


class TestSessionKinds:
    def test_aborted_sessions_have_rst(self):
        config = WebTrafficConfig(
            duration=20, flow_rate=20, seed=9, aborted_prob=1.0
        )
        trace = WebTrafficGenerator(config).generate()
        flows = assemble_flows(trace.packets)
        assert all(len(flow) == 3 for flow in flows)
        assert all(
            flow.packets[-1].flags & TCP_RST for flow in flows
        )

    def test_persistent_sessions_are_long(self):
        config = WebTrafficConfig(
            duration=5, flow_rate=10, seed=9,
            aborted_prob=0.0, persistent_prob=1.0,
        )
        trace = WebTrafficGenerator(config).generate()
        flows = assemble_flows(trace.packets)
        assert all(len(flow) > 50 for flow in flows)

    def test_simple_sessions_end_with_fin(self):
        config = WebTrafficConfig(
            duration=5, flow_rate=10, seed=9,
            aborted_prob=0.0, persistent_prob=0.0,
        )
        trace = WebTrafficGenerator(config).generate()
        for flow in assemble_flows(trace.packets):
            assert flow.packets[-1].flags & TCP_FIN

    def test_expected_packet_formulas(self):
        generator = WebTrafficGenerator()
        assert generator.expected_packets_simple(1) == 7
        assert generator.expected_packets_persistent(10) == 34


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(duration=0.0),
            dict(flow_rate=0.0),
            dict(ack_every=0),
            dict(persistent_prob=1.5),
            dict(aborted_prob=-0.1),
            dict(persistent_rounds_min=10, persistent_rounds_max=5),
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            WebTrafficConfig(**kwargs)
