"""Tests for the P2P traffic generator."""

import pytest

from repro.flows.assembler import assemble_flows
from repro.synth.p2pgen import (
    P2PTrafficConfig,
    P2PTrafficGenerator,
    generate_p2p_trace,
)
from repro.trace.stats import compute_statistics


@pytest.fixture(scope="module")
def p2p_trace():
    return generate_p2p_trace(duration=20.0, session_rate=6.0, seed=3)


class TestShape:
    def test_time_ordered(self, p2p_trace):
        assert p2p_trace.is_time_ordered()

    def test_deterministic(self):
        a = generate_p2p_trace(duration=5, session_rate=5, seed=9)
        b = generate_p2p_trace(duration=5, session_rate=5, seed=9)
        assert [p.src_ip for p in a] == [p.src_ip for p in b]

    def test_no_port_80_anchor(self, p2p_trace):
        # P2P talks ephemeral-to-ephemeral.
        assert all(
            p.src_port > 1024 and p.dst_port > 1024 for p in p2p_trace.packets
        )

    def test_heavier_long_flow_population_than_web(self, p2p_trace):
        stats = compute_statistics(p2p_trace)
        # Web sits at ~97-98% short; P2P must be clearly below.
        assert stats.short_flow_fraction < 0.93

    def test_sessions_are_tcp_wellformed(self, p2p_trace):
        flows = assemble_flows(p2p_trace.packets)
        syn_starts = sum(1 for f in flows if f.starts_with_syn())
        assert syn_starts > 0.9 * len(flows)

    def test_bidirectional_payloads(self, p2p_trace):
        flows = assemble_flows(p2p_trace.packets)
        both_ways = 0
        for flow in flows:
            c2s = sum(
                fp.payload_len for fp in flow if fp.direction.value == "c2s"
            )
            s2c = sum(
                fp.payload_len for fp in flow if fp.direction.value == "s2c"
            )
            if c2s > 1000 and s2c > 1000:
                both_ways += 1
        # Symmetric exchange: a solid share of sessions upload both ways.
        assert both_ways > 0.2 * len(flows)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(duration=0.0),
            dict(session_rate=0.0),
            dict(peer_count=1),
            dict(swap_prob=1.5),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            P2PTrafficConfig(**kwargs)

    def test_peer_pool_size(self):
        generator = P2PTrafficGenerator(P2PTrafficConfig(peer_count=50))
        assert len(generator._peers) == 50
