"""Tests for the random-destination control trace."""

from repro.synth.randomize import randomize_destinations
from repro.trace.stats import group_flow_lengths


class TestRandomize:
    def test_timing_preserved(self, multi_flow_trace):
        randomized = randomize_destinations(multi_flow_trace, seed=1)
        assert [p.timestamp for p in randomized] == [
            p.timestamp for p in multi_flow_trace
        ]

    def test_flags_sizes_ports_preserved(self, multi_flow_trace):
        randomized = randomize_destinations(multi_flow_trace, seed=1)
        for original, shuffled in zip(multi_flow_trace.packets, randomized.packets):
            assert shuffled.flags == original.flags
            assert shuffled.payload_len == original.payload_len
            assert shuffled.src_port == original.src_port
            assert shuffled.dst_port == original.dst_port

    def test_addresses_changed(self, multi_flow_trace):
        randomized = randomize_destinations(multi_flow_trace, seed=1)
        original = {p.dst_ip for p in multi_flow_trace.packets}
        shuffled = {p.dst_ip for p in randomized.packets}
        assert len(original & shuffled) == 0

    def test_per_flow_mapping_keeps_flow_count(self, multi_flow_trace):
        randomized = randomize_destinations(multi_flow_trace, seed=1)
        assert len(group_flow_lengths(randomized.packets)) == len(
            group_flow_lengths(multi_flow_trace.packets)
        )

    def test_per_packet_mode_destroys_flows(self, multi_flow_trace):
        randomized = randomize_destinations(
            multi_flow_trace, seed=1, per_flow=False
        )
        assert len(group_flow_lengths(randomized.packets)) > len(
            group_flow_lengths(multi_flow_trace.packets)
        )

    def test_deterministic(self, multi_flow_trace):
        a = randomize_destinations(multi_flow_trace, seed=2)
        b = randomize_destinations(multi_flow_trace, seed=2)
        assert [p.dst_ip for p in a] == [p.dst_ip for p in b]

    def test_name_suffix(self, multi_flow_trace):
        assert randomize_destinations(multi_flow_trace).name.endswith("-random")
