"""Tests for the LRU-stack-model trace generator."""

import random

import pytest

from repro.synth.lrustack import LruStackModel, generate_fracexp_trace


class TestAddressStream:
    def test_count(self):
        model = LruStackModel()
        stream = model.address_stream(random.Random(1), 500)
        assert len(stream) == 500

    def test_temporal_locality(self):
        # Recently used addresses recur: distinct addresses << packets.
        model = LruStackModel(new_address_prob=0.02)
        stream = model.address_stream(random.Random(2), 5000)
        assert len(set(stream)) < 1000

    def test_high_new_prob_less_locality(self):
        local = LruStackModel(new_address_prob=0.01)
        fresh = LruStackModel(new_address_prob=0.8)
        local_stream = local.address_stream(random.Random(3), 3000)
        fresh_stream = fresh.address_stream(random.Random(3), 3000)
        assert len(set(fresh_stream)) > len(set(local_stream))

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            LruStackModel().address_stream(random.Random(1), -1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LruStackModel(max_depth=0)
        with pytest.raises(ValueError):
            LruStackModel(new_address_prob=1.5)


class TestFracexpTrace:
    def test_packet_count(self):
        trace = generate_fracexp_trace(300, seed=4)
        assert len(trace) == 300
        assert trace.name == "fracexp"

    def test_time_ordered(self):
        assert generate_fracexp_trace(300, seed=4).is_time_ordered()

    def test_exponential_inter_packet_mean(self):
        trace = generate_fracexp_trace(5000, mean_inter_packet=0.002, seed=5)
        gaps = [
            b.timestamp - a.timestamp
            for a, b in zip(trace.packets, trace.packets[1:])
        ]
        assert sum(gaps) / len(gaps) == pytest.approx(0.002, rel=0.1)

    def test_deterministic(self):
        a = generate_fracexp_trace(100, seed=6)
        b = generate_fracexp_trace(100, seed=6)
        assert [p.dst_ip for p in a] == [p.dst_ip for p in b]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_fracexp_trace(-1)
        with pytest.raises(ValueError):
            generate_fracexp_trace(10, mean_inter_packet=0.0)
