"""Tests for the address pools."""

import random

import pytest

from repro.net.ip import address_class
from repro.synth.addresses import AddressPool, AddressPoolConfig


class TestPopulation:
    def test_counts(self):
        pool = AddressPool(AddressPoolConfig(server_count=50, client_count=100))
        assert len(pool.servers) == 50
        assert len(pool.clients) == 100

    def test_unique_addresses(self):
        pool = AddressPool()
        assert len(set(pool.servers)) == len(pool.servers)
        assert len(set(pool.clients)) == len(pool.clients)

    def test_servers_class_c_space(self):
        pool = AddressPool()
        assert all(address_class(a) == "C" for a in pool.servers)

    def test_clients_class_b_space(self):
        pool = AddressPool()
        assert all(address_class(a) == "B" for a in pool.clients)

    def test_subnet_clustering(self):
        config = AddressPoolConfig(server_count=200, server_subnets=10)
        pool = AddressPool(config)
        subnets = {a & 0xFFFFFF00 for a in pool.servers}
        assert len(subnets) <= 10

    def test_deterministic(self):
        assert AddressPool(seed=3).servers == AddressPool(seed=3).servers

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AddressPoolConfig(server_count=0)
        with pytest.raises(ValueError):
            AddressPoolConfig(client_subnets=0)


class TestPopularity:
    def test_zipf_server_popularity(self):
        pool = AddressPool(AddressPoolConfig(server_count=100))
        rng = random.Random(5)
        hits: dict[int, int] = {}
        for _ in range(20000):
            server = pool.pick_server(rng)
            hits[server] = hits.get(server, 0) + 1
        top = max(hits.values())
        # The hottest server dominates uniform share (200) by far.
        assert top > 1000

    def test_clients_roughly_uniform(self):
        pool = AddressPool(AddressPoolConfig(client_count=50))
        rng = random.Random(5)
        hits: dict[int, int] = {}
        for _ in range(20000):
            client = pool.pick_client(rng)
            hits[client] = hits.get(client, 0) + 1
        assert max(hits.values()) < 3 * (20000 / 50)
