"""Tests for the traffic-scenario registry and its registered workloads."""

from functools import lru_cache

import pytest

from repro.net.packet import PROTO_TCP, PROTO_UDP, validate_packet
from repro.net.tcp import TCP_ACK, TCP_SYN
from repro.synth.scenarios import (
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.synth.webgen import generate_web_trace
from repro.trace.tsh import write_tsh_bytes

DURATION = 1.5
FLOW_RATE = 24.0
SEED = 41


@lru_cache(maxsize=None)
def built(name):
    return get_scenario(name).build(
        duration=DURATION, flow_rate=FLOW_RATE, seed=SEED
    )


class TestRegistry:
    def test_names_in_registration_order(self):
        assert scenario_names() == (
            "web",
            "p2p",
            "web-search",
            "data-mining",
            "mixed-protocol",
            "flood",
            "mptcp",
        )

    def test_iter_matches_names(self):
        assert tuple(s.name for s in iter_scenarios()) == scenario_names()

    def test_every_scenario_has_a_summary(self):
        for scenario in iter_scenarios():
            assert isinstance(scenario, Scenario)
            assert scenario.summary
            assert scenario.default_seed > 0

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(ValueError, match="unknown scenario: 'bogus'"):
            get_scenario("bogus")
        with pytest.raises(ValueError, match="web, p2p"):
            get_scenario("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("web", "dupe", default_seed=1)(
                lambda d, r, s: None
            )


class TestBuildContract:
    @pytest.mark.parametrize("kwargs", [dict(duration=0.0), dict(flow_rate=-1.0)])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            get_scenario("web").build(**{"duration": 1.0, "flow_rate": 10.0, **kwargs})

    def test_seed_none_uses_default_seed(self):
        scenario = get_scenario("flood")
        implicit = scenario.build(duration=0.8, flow_rate=16.0)
        explicit = scenario.build(
            duration=0.8, flow_rate=16.0, seed=scenario.default_seed
        )
        assert write_tsh_bytes(implicit.packets) == write_tsh_bytes(
            explicit.packets
        )

    @pytest.mark.parametrize("name", scenario_names())
    def test_builds_valid_time_ordered_trace(self, name):
        trace = built(name)
        assert trace.packets
        assert trace.is_time_ordered()
        for packet in trace.packets:
            validate_packet(packet)

    @pytest.mark.parametrize("name", scenario_names())
    def test_deterministic_per_seed(self, name):
        again = get_scenario(name).build(
            duration=DURATION, flow_rate=FLOW_RATE, seed=SEED
        )
        assert write_tsh_bytes(again.packets) == write_tsh_bytes(
            built(name).packets
        )

    @pytest.mark.parametrize("name", scenario_names())
    def test_seed_changes_the_trace(self, name):
        other = get_scenario(name).build(
            duration=DURATION, flow_rate=FLOW_RATE, seed=SEED + 1
        )
        assert write_tsh_bytes(other.packets) != write_tsh_bytes(
            built(name).packets
        )


class TestWebIsTheHistoricalDefault:
    def test_web_builder_matches_generate_web_trace(self):
        """`repro generate` without --scenario must stay byte-compatible."""
        via_registry = get_scenario("web").build(
            duration=2.0, flow_rate=20.0, seed=1
        )
        direct = generate_web_trace(duration=2.0, flow_rate=20.0, seed=1)
        assert write_tsh_bytes(via_registry.packets) == write_tsh_bytes(
            direct.packets
        )


class TestScenarioCharacter:
    """Each scenario exhibits the traffic shape its summary promises."""

    def test_incast_scenarios_fan_in_to_aggregators(self):
        from collections import Counter

        from repro.synth.cdfgen import CdfTrafficConfig

        fanin = CdfTrafficConfig().fanin
        for name in ("web-search", "data-mining"):
            trace = built(name)
            # Each query is one aggregator opening exactly ``fanin``
            # worker flows, so per-aggregator SYN counts come in
            # multiples of the fan-in.
            syns = Counter(
                p.src_ip
                for p in trace.packets
                if p.dst_port == 80 and p.flags & TCP_SYN
            )
            assert syns
            assert all(count % fanin == 0 for count in syns.values())
            # And the responses genuinely converge: each aggregator
            # hears from multiple distinct workers.
            workers = {p.src_ip for p in trace.packets if p.src_port == 80}
            assert len(workers) >= 2

    def test_data_mining_tail_is_heavier(self):
        # The data-mining CDF's tail reaches ~667 MB vs ~20 MB: at equal
        # flow rates it must move more bytes per flow on average.
        from repro.synth.cdfgen import (
            DATA_MINING_FLOW_SIZES,
            WEB_SEARCH_FLOW_SIZES,
        )

        assert (
            DATA_MINING_FLOW_SIZES.mean_bytes()
            > WEB_SEARCH_FLOW_SIZES.mean_bytes()
        )

    def test_mixed_protocol_blends_tcp_and_udp(self):
        trace = built("mixed-protocol")
        protocols = {p.protocol for p in trace.packets}
        assert protocols == {PROTO_TCP, PROTO_UDP}
        assert any(p.dst_port == 53 for p in trace.packets)  # DNS
        assert any(p.dst_port == 22 for p in trace.packets)  # SSH

    def test_flood_is_half_open(self):
        trace = built("flood")
        syns = [
            p
            for p in trace.packets
            if p.protocol == PROTO_TCP and p.flags & TCP_SYN
        ]
        synacks = [p for p in syns if p.flags & TCP_ACK]
        # Spoofed SYNs with no handshake completion: no SYN/ACK replies.
        assert syns and not synacks
        # Spoofed sources barely repeat.
        assert len({p.src_ip for p in syns}) > 0.9 * len(syns)

    def test_mptcp_stripes_over_multiple_subflows(self):
        trace = built("mptcp")
        assert all(p.protocol == PROTO_TCP for p in trace.packets)
        # Every packet touches the server port; client ports form the
        # subflows — strictly more subflows than client addresses.
        ports = {443}
        assert all(
            p.src_port in ports or p.dst_port in ports for p in trace.packets
        )
        subflows = {
            (p.src_ip, p.src_port)
            for p in trace.packets
            if p.dst_port == 443 and p.flags & TCP_SYN
        }
        client_ips = {ip for ip, _ in subflows}
        assert len(subflows) > len(client_ips)
