"""The sans-IO frame decoders behind both the file readers and serve.

The invariant every test here leans on: feeding a byte stream in
*arbitrary* slices must decode exactly what one whole-buffer pass
decodes — that equivalence is what lets sockets, tails, and files share
one implementation.
"""

from __future__ import annotations

import io

import pytest

from repro.trace.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    END_OF_STREAM,
    FrameDecodeError,
    LengthFramer,
    PcapStreamDecoder,
    RecordChunker,
    TshStreamDecoder,
    frame,
    stream_decoder,
)
from repro.trace.pcaplite import write_pcap
from repro.trace.tsh import TSH_RECORD_BYTES, read_tsh_bytes


def _slices(data: bytes, sizes) -> list[bytes]:
    """Cut ``data`` into slices cycling through ``sizes``."""
    out, position, index = [], 0, 0
    while position < len(data):
        step = sizes[index % len(sizes)]
        out.append(data[position : position + step])
        position += step
        index += 1
    return out


class TestRecordChunker:
    def test_rejects_bad_record_size(self):
        with pytest.raises(ValueError):
            RecordChunker(0)

    @pytest.mark.parametrize("sizes", [[1], [7, 13], [44], [100], [3, 44, 1]])
    def test_reassembles_any_slicing(self, sizes):
        records = b"".join(bytes([i]) * TSH_RECORD_BYTES for i in range(9))
        chunker = RecordChunker(TSH_RECORD_BYTES)
        output = b"".join(chunker.feed(piece) for piece in _slices(records, sizes))
        chunker.finish()
        assert output == records
        assert chunker.pending_bytes == 0

    def test_finish_raises_on_partial_record_with_label(self):
        chunker = RecordChunker(TSH_RECORD_BYTES, label="TSH record")
        chunker.feed(b"\x00" * 10)
        with pytest.raises(FrameDecodeError, match="truncated TSH record"):
            chunker.finish()


class TestLengthFramer:
    def test_roundtrip_arbitrary_slicing(self):
        payloads = [b"alpha", b"b" * 1000, b"x"]
        wire = b"".join(frame(p) for p in payloads) + END_OF_STREAM
        for sizes in ([1], [3, 5], [4096]):
            framer = LengthFramer()
            seen: list[bytes] = []
            for piece in _slices(wire, sizes):
                seen.extend(framer.feed(piece))
            framer.finish()
            assert seen == payloads
            assert framer.eof

    def test_bytes_after_end_of_stream_rejected(self):
        framer = LengthFramer()
        framer.feed(END_OF_STREAM)
        with pytest.raises(FrameDecodeError, match="after the end-of-stream"):
            framer.feed(b"more")

    def test_trailing_bytes_with_end_of_stream_rejected(self):
        framer = LengthFramer()
        with pytest.raises(FrameDecodeError, match="after the end-of-stream"):
            framer.feed(END_OF_STREAM + b"junk")

    def test_oversized_frame_rejected(self):
        framer = LengthFramer(max_frame_bytes=16)
        with pytest.raises(FrameDecodeError, match="exceeds"):
            framer.feed(frame(b"y" * 17))
        assert LengthFramer().max_frame_bytes == DEFAULT_MAX_FRAME_BYTES

    def test_finish_mid_frame_raises(self):
        framer = LengthFramer()
        framer.feed(frame(b"abcdef")[:4])
        with pytest.raises(FrameDecodeError, match="ended inside a frame"):
            framer.finish()

    def test_finish_clean_without_eof_marker(self):
        # A client that just closes on a frame boundary is legal.
        framer = LengthFramer()
        assert framer.feed(frame(b"ok")) == [b"ok"]
        framer.finish()
        assert not framer.eof


class TestStreamDecoders:
    @pytest.fixture(scope="class")
    def trace(self, workload):
        return workload[0]

    @pytest.mark.parametrize("sizes", [[1], [17, 301], [65536]])
    def test_tsh_decoder_matches_file_reader(self, workload, sizes):
        trace, data = workload
        decoder = TshStreamDecoder()
        packets = []
        for piece in _slices(data, sizes):
            packets.extend(decoder.feed(piece))
        decoder.finish()
        assert packets == read_tsh_bytes(data)
        assert len(packets) == len(trace)

    def test_tsh_decoder_truncation(self):
        decoder = TshStreamDecoder()
        decoder.feed(b"\x01" * 10)
        assert decoder.pending_bytes == 10
        with pytest.raises(FrameDecodeError, match="truncated TSH record"):
            decoder.finish()

    @pytest.mark.parametrize("sizes", [[1], [13, 509], [65536]])
    def test_pcap_decoder_matches_file_reader(self, trace, sizes):
        buffer = io.BytesIO()
        write_pcap(list(trace), buffer)
        data = buffer.getvalue()
        decoder = PcapStreamDecoder()
        packets = []
        for piece in _slices(data, sizes):
            packets.extend(decoder.feed(piece))
        decoder.finish()
        buffer.seek(0)
        from repro.trace.pcaplite import read_pcap

        assert packets == list(read_pcap(buffer))

    def test_pcap_decoder_bad_magic(self):
        decoder = PcapStreamDecoder()
        with pytest.raises(FrameDecodeError, match="magic"):
            decoder.feed(b"\x00" * 24)

    def test_pcap_decoder_truncated_global_header(self):
        decoder = PcapStreamDecoder()
        decoder.feed(b"\xd4")
        with pytest.raises(FrameDecodeError, match="global header"):
            decoder.finish()

    def test_pcap_decoder_truncated_record(self, trace):
        buffer = io.BytesIO()
        write_pcap(list(trace)[:2], buffer)
        decoder = PcapStreamDecoder()
        decoder.feed(buffer.getvalue()[:-3])
        with pytest.raises(FrameDecodeError, match="record"):
            decoder.finish()

    def test_factory(self):
        assert stream_decoder("tsh").format == "tsh"
        assert stream_decoder("pcap").format == "pcap"
        with pytest.raises(ValueError, match="unknown stream format"):
            stream_decoder("erf")


class TestReaderSharing:
    """The file readers now run on the same chunker — same errors."""

    def test_tsh_reader_truncation_message_preserved(self, workload):
        _, data = workload
        with pytest.raises(ValueError, match="truncated TSH record"):
            read_tsh_bytes(data[:100])
