"""Source-spec grammar and ServeOptions validation."""

from __future__ import annotations

import pytest

from repro.api.errors import OptionsError
from repro.api.options import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_QUEUE_CHUNKS,
    DEFAULT_TAIL_POLL_SECONDS,
    Options,
    ServeOptions,
)
from repro.serve import SourceSpec, parse_source
from repro.trace.framing import DEFAULT_MAX_FRAME_BYTES


class TestParseSource:
    def test_unix(self):
        spec = parse_source("unix:/tmp/ingest.sock")
        assert spec == SourceSpec("unix", "/tmp/ingest.sock", "tsh")
        assert spec.is_socket

    def test_tcp_with_port(self):
        spec = parse_source("tcp:127.0.0.1:9400")
        assert spec.scheme == "tcp"
        assert spec.tcp_address() == ("127.0.0.1", 9400)
        assert spec.is_socket

    def test_tail(self):
        spec = parse_source("tail:/var/log/capture.tsh")
        assert spec.scheme == "tail"
        assert spec.target == "/var/log/capture.tsh"
        assert not spec.is_socket

    def test_pcap_suffix(self):
        assert parse_source("unix:/tmp/a.sock+pcap").format == "pcap"
        assert parse_source("tail:/caps/live.pcap+pcap").format == "pcap"
        assert parse_source("tcp:localhost:9000+tsh").format == "tsh"

    def test_plus_in_path_without_known_format_is_literal(self):
        # "+extra" is not a stream format, so it stays part of the path.
        assert parse_source("tail:/caps/a+extra").target == "/caps/a+extra"

    def test_str_roundtrips(self):
        for text in ("unix:/x.sock", "tcp:h:1+pcap", "tail:/f"):
            assert str(parse_source(text)) == text
        assert str(parse_source("unix:/x.sock+tsh")) == "unix:/x.sock"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "unix",  # no colon
            "http:/x",  # unknown scheme
            "unix:",  # empty target
            "tcp:9400",  # missing host
            "tcp:host:",  # missing port
            "tcp:host:http",  # non-numeric port
            "tcp:host:70000",  # port out of range
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_source(bad)


class TestServeOptions:
    def test_defaults(self):
        options = ServeOptions()
        assert options.sources == ()
        assert options.queue_chunks == DEFAULT_QUEUE_CHUNKS
        assert options.max_frame_bytes == DEFAULT_MAX_FRAME_BYTES
        assert options.drain_timeout == DEFAULT_DRAIN_TIMEOUT
        assert options.tail_poll_seconds == DEFAULT_TAIL_POLL_SECONDS
        assert options.rotate_seconds is None
        assert options.stop_after_packets is None
        assert options.prometheus_port is None

    def test_sources_coerced_to_tuple(self):
        options = ServeOptions(sources=["unix:/a.sock", "tail:/b"])
        assert options.sources == ("unix:/a.sock", "tail:/b")

    def test_bad_source_is_options_error(self):
        with pytest.raises(OptionsError, match="unix/tcp/tail"):
            ServeOptions(sources=("ftp:/x",))

    @pytest.mark.parametrize(
        "field, value",
        [
            ("rotate_seconds", 0),
            ("rotate_seconds", -1.0),
            ("queue_chunks", 0),
            ("max_frame_bytes", 43),
            ("drain_timeout", 0),
            ("stop_after_packets", 0),
            ("prometheus_port", -1),
            ("prometheus_port", 65536),
            ("tail_poll_seconds", 0),
        ],
    )
    def test_numeric_bounds(self, field, value):
        with pytest.raises(OptionsError, match=field.replace("_", "[_ ]")):
            ServeOptions(**{field: value})

    def test_nested_in_options(self):
        options = Options(serve=ServeOptions(sources=("tail:/t",)))
        assert options.serve.sources == ("tail:/t",)
        assert Options().serve == ServeOptions()
