"""Shared fixtures for the ingest-daemon tests.

The daemon runs in-process (``api.serve`` blocks in the test thread's
event loop) while clients run in plain background threads talking real
sockets — the same shape as production, minus the subprocess.  The
SIGTERM path, which needs a real process to signal, lives in
``tests/integration/test_serve_sigterm.py``.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.synth import generate_web_trace
from repro.trace.framing import END_OF_STREAM, frame

CONNECT_TIMEOUT = 5.0


@pytest.fixture(scope="module")
def workload():
    """A deterministic ~5k-packet trace and its raw TSH bytes."""
    trace = generate_web_trace(duration=12.0, flow_rate=30.0, seed=21)
    return trace, trace.to_tsh_bytes()


def wait_for_path(path: str, timeout: float = CONNECT_TIMEOUT) -> None:
    deadline = time.monotonic() + timeout
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise TimeoutError(f"{path} never appeared")
        time.sleep(0.01)


def send_framed(
    sock_path: str,
    data: bytes,
    *,
    frame_bytes: int = 9973,
    end_of_stream: bool = True,
) -> None:
    """Connect to a daemon unix socket and stream ``data`` in odd frames."""
    wait_for_path(sock_path)
    client = socket.socket(socket.AF_UNIX)
    try:
        client.connect(sock_path)
        for start in range(0, len(data), frame_bytes):
            client.sendall(frame(data[start : start + frame_bytes]))
        if end_of_stream:
            client.sendall(END_OF_STREAM)
    finally:
        client.close()


def in_thread(target, *args, **kwargs) -> threading.Thread:
    thread = threading.Thread(target=target, args=args, kwargs=kwargs, daemon=True)
    thread.start()
    return thread
