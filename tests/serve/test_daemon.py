"""In-process daemon tests: api.serve blocks in this thread's event
loop while client threads talk to it over real sockets and files."""

from __future__ import annotations

import asyncio
import io
import socket
import time
from dataclasses import replace

import pytest

import repro.api as api
from repro.api.errors import OptionsError
from repro.api.options import ArchiveOptions, Options, ServeOptions
from repro.archive.reader import ArchiveReader
from repro.archive.writer import ArchiveWriter
from repro.obs import MetricsRegistry, metric_name, scoped
from repro.serve.daemon import _Daemon, _Source
from repro.serve.sources import parse_source
from repro.trace.pcaplite import write_pcap
from repro.trace.tsh import read_tsh_bytes

from tests.serve.conftest import in_thread, send_framed, wait_for_path

SEGMENT_SPAN = 5.0


def _base_options(**serve_kwargs) -> Options:
    return Options(
        archive=ArchiveOptions(segment_span=SEGMENT_SPAN),
        serve=ServeOptions(**serve_kwargs),
    )


def _offline_archive(path, packets, *, label: str, epoch: float) -> bytes:
    """The batch-path archive the live one must match byte for byte."""
    options = replace(
        _base_options(),
        name=label,
        archive=ArchiveOptions(segment_span=SEGMENT_SPAN, epoch=epoch),
    )
    writer = ArchiveWriter.create(path, options=options)
    writer.feed(packets)
    writer.close()
    return path.read_bytes()


def _replayed(path) -> list:
    with api.open(path) as store:
        return list(store.packets())


class TestUnixSource:
    def test_byte_identical_to_offline_build(self, tmp_path, workload):
        trace, data = workload
        packets = read_tsh_bytes(data)
        sock = str(tmp_path / "ingest.sock")
        live = tmp_path / "live.fctca"

        with scoped(MetricsRegistry()) as registry:
            client = in_thread(send_framed, sock, data)
            report = api.serve(
                str(live),
                _base_options(
                    sources=(f"unix:{sock}",),
                    stop_after_packets=len(packets),
                ),
            )
            client.join(timeout=5)

        assert report.packets == len(packets)
        assert report.clean
        assert "packet budget" in report.stop_reason
        assert report.dropped_chunks == 0
        assert [s.label for s in report.sources] == ["unix0"]
        assert report.sources[0].packets == len(packets)
        assert report.sources[0].decode_errors == 0
        assert report.segments > 1  # the span policy actually rotated

        offline_path = tmp_path / "offline.fctca"
        offline = _offline_archive(
            offline_path,
            packets,
            label="unix0",
            epoch=packets[0].timestamp,
        )
        assert live.read_bytes() == offline
        replayed = _replayed(live)
        assert replayed == _replayed(offline_path)
        assert len(replayed) == len(packets)

        # The per-source metric catalog saw the same totals.
        counters = registry.snapshot().counters()
        assert counters["serve.source.unix0.packets"] == len(packets)
        assert counters["serve.packets"] == len(packets)
        assert counters["serve.segments"] == report.segments
        assert counters["serve.source.unix0.connections"] == 1
        assert counters["archive.segments_rotated"] == report.segments

    def test_two_connections_interleave(self, tmp_path, workload):
        _, data = workload
        packets = read_tsh_bytes(data)
        half = (len(packets) // 2) * 44
        sock = str(tmp_path / "pair.sock")
        live = tmp_path / "pair.fctca"

        first = in_thread(send_framed, sock, data[:half])
        second = in_thread(send_framed, sock, data[half:])
        report = api.serve(
            str(live),
            _base_options(
                sources=(f"unix:{sock}",), stop_after_packets=len(packets)
            ),
        )
        first.join(timeout=5)
        second.join(timeout=5)
        assert report.packets == len(packets)
        assert report.sources[0].decode_errors == 0
        # Interleaving reorders chunks across connections, so the bytes
        # differ from a single-stream build — but no packet is lost.
        with ArchiveReader(str(live)) as reader:
            assert reader.packet_count() == len(packets)


class TestTailSource:
    def test_follows_growth_and_reads_preexisting_bytes(self, tmp_path, workload):
        _, data = workload
        packets = read_tsh_bytes(data)
        capture = tmp_path / "capture.tsh"
        half = (len(packets) // 2) * 44
        capture.write_bytes(data[:half])  # pre-existing content counts
        live = tmp_path / "tail.fctca"

        def grow():
            time.sleep(0.2)
            with open(capture, "ab") as stream:
                stream.write(data[half:])

        grower = in_thread(grow)
        report = api.serve(
            str(live),
            _base_options(
                sources=(f"tail:{capture}",),
                stop_after_packets=len(packets),
                tail_poll_seconds=0.05,
            ),
        )
        grower.join(timeout=5)

        assert report.packets == len(packets)
        assert report.sources[0].label == "tail0"
        offline = _offline_archive(
            tmp_path / "offline.fctca",
            packets,
            label="tail0",
            epoch=packets[0].timestamp,
        )
        assert live.read_bytes() == offline


class TestPcapSource:
    def test_pcap_framing_suffix(self, tmp_path, workload):
        trace, data = workload
        packets = read_tsh_bytes(data)
        buffer = io.BytesIO()
        write_pcap(packets, buffer)
        sock = str(tmp_path / "pcap.sock")
        live = tmp_path / "pcap.fctca"

        client = in_thread(send_framed, sock, buffer.getvalue())
        report = api.serve(
            str(live),
            _base_options(
                sources=(f"unix:{sock}+pcap",),
                stop_after_packets=len(packets),
            ),
        )
        client.join(timeout=5)
        assert report.packets == len(packets)
        assert report.sources[0].decode_errors == 0
        assert len(_replayed(live)) == len(packets)


class TestBackpressure:
    def test_full_queue_counts_wait_then_delivers(self):
        async def scenario():
            source = _Source(
                parse_source("tail:/nowhere"), "tail0", None, queue_chunks=1
            )
            daemon = object.__new__(_Daemon)  # _enqueue touches no state
            await daemon._enqueue(source, ["chunk-1"])

            async def pop_one():
                await asyncio.sleep(0.05)
                return source.queue.get_nowait()

            popper = asyncio.create_task(pop_one())
            await daemon._enqueue(source, ["chunk-2"])  # blocks until pop
            assert await popper == ["chunk-1"]
            assert source.queue.get_nowait() == ["chunk-2"]
            return source

        with scoped(MetricsRegistry()):
            source = asyncio.run(scenario())
        assert source.report.backpressure_waits == 1
        assert source.report.chunks == 2
        assert source.backpressure_counter.value == 1


class TestPrometheusEndpoint:
    def test_metrics_served_mid_run(self, tmp_path, workload):
        _, data = workload
        packets = read_tsh_bytes(data)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sock = str(tmp_path / "prom.sock")
        live = tmp_path / "prom.fctca"
        pages: list[bytes] = []

        def fetch_then_send():
            deadline = time.monotonic() + 5
            while True:
                try:
                    with socket.create_connection(
                        ("127.0.0.1", port), timeout=1
                    ) as client:
                        client.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
                        chunks = []
                        while chunk := client.recv(4096):
                            chunks.append(chunk)
                    pages.append(b"".join(chunks))
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            send_framed(sock, data)

        client = in_thread(fetch_then_send)
        report = api.serve(
            str(live),
            _base_options(
                sources=(f"unix:{sock}",),
                stop_after_packets=len(packets),
                prometheus_port=port,
            ),
        )
        client.join(timeout=10)

        assert report.prometheus_port == port
        assert pages, "metrics endpoint never answered"
        page = pages[0].decode()
        assert "200 OK" in page
        assert "text/plain; version=0.0.4" in page
        assert metric_name("serve.source.unix0.packets") in page


class TestGuards:
    def test_serve_without_sources_raises(self, tmp_path):
        with pytest.raises(OptionsError, match="at least one source"):
            api.serve(str(tmp_path / "x.fctca"), Options())

    def test_decode_error_counted_not_fatal(self, tmp_path, workload):
        _, data = workload
        sock = str(tmp_path / "torn.sock")
        live = tmp_path / "torn.fctca"

        def send_torn():
            wait_for_path(sock)
            client = socket.socket(socket.AF_UNIX)
            try:
                client.connect(sock)
                from repro.trace.framing import frame

                # 100 whole records, then a torn half-record, no EOS.
                client.sendall(frame(data[: 44 * 100] + data[:22]))
            finally:
                client.close()

        client = in_thread(send_torn)
        report = api.serve(
            str(live),
            _base_options(
                sources=(f"unix:{sock}",),
                stop_after_packets=100,
                drain_timeout=5.0,
            ),
        )
        client.join(timeout=5)
        assert report.packets == 100
        assert report.sources[0].decode_errors == 1
        with ArchiveReader(str(live)) as reader:
            assert reader.packet_count() == 100
