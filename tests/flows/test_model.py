"""Tests for the Flow data model."""

import pytest

from repro.flows.model import Direction, Flow, flow_from_packets
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN

from tests.conftest import CLIENT_IP, SERVER_IP, make_web_flow


def build_flow(packets=None) -> Flow:
    packets = packets if packets is not None else make_web_flow()
    return flow_from_packets(packets[0].five_tuple(), packets)


class TestDirection:
    def test_opposite(self):
        assert Direction.CLIENT_TO_SERVER.opposite() is Direction.SERVER_TO_CLIENT
        assert Direction.SERVER_TO_CLIENT.opposite() is Direction.CLIENT_TO_SERVER


class TestFlowConstruction:
    def test_directions_annotated(self):
        flow = build_flow()
        directions = [fp.direction for fp in flow]
        assert directions[0] is Direction.CLIENT_TO_SERVER  # SYN
        assert directions[1] is Direction.SERVER_TO_CLIENT  # SYN+ACK

    def test_add_rejects_foreign_packet(self):
        flow = build_flow()
        stranger = PacketRecord(1.0, 0x01010101, 0x02020202, 5, 6)
        with pytest.raises(ValueError, match="does not belong"):
            flow.add(stranger)

    def test_len_and_iter(self):
        flow = build_flow()
        assert len(flow) == len(list(flow)) == 8


class TestTimes:
    def test_start_end_duration(self):
        flow = build_flow()
        assert flow.start_time() == 1000.0
        assert flow.duration() == pytest.approx(
            flow.end_time() - flow.start_time()
        )

    def test_inter_packet_times_length(self):
        flow = build_flow()
        gaps = flow.inter_packet_times()
        assert len(gaps) == len(flow) - 1
        assert all(g >= 0 for g in gaps)

    def test_empty_flow_raises(self):
        empty = Flow(build_flow().key)
        with pytest.raises(ValueError):
            empty.start_time()


class TestTcpSemantics:
    def test_starts_with_syn(self):
        assert build_flow().starts_with_syn()

    def test_syn_ack_start_is_not_bare_syn(self):
        packets = make_web_flow()[1:]  # drops the SYN
        flow = flow_from_packets(packets[0].five_tuple(), packets)
        assert not flow.starts_with_syn()

    def test_is_terminated(self):
        assert build_flow().is_terminated()

    def test_unterminated(self):
        packets = make_web_flow()[:-1]  # drops the FIN
        flow = flow_from_packets(packets[0].five_tuple(), packets)
        assert not flow.is_terminated()

    def test_rst_terminates(self):
        packets = make_web_flow()[:-1]
        rst = PacketRecord(
            packets[-1].timestamp + 1,
            CLIENT_IP,
            SERVER_IP,
            2000,
            80,
            flags=TCP_RST,
        )
        flow = flow_from_packets(packets[0].five_tuple(), packets + [rst])
        assert flow.is_terminated()

    def test_estimate_rtt_is_handshake_gap(self):
        flow = build_flow()
        # make_web_flow uses rtt=0.05 between SYN and SYN+ACK.
        assert flow.estimate_rtt() == pytest.approx(0.05, abs=1e-9)

    def test_estimate_rtt_no_turnaround(self):
        packets = [
            PacketRecord(float(i), CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK)
            for i in range(3)
        ]
        flow = flow_from_packets(packets[0].five_tuple(), packets)
        assert flow.estimate_rtt() == 0.0


class TestAggregates:
    def test_total_bytes_and_payload(self):
        flow = build_flow()
        assert flow.total_payload() == 300 + 2 * 1460
        assert flow.total_bytes() == flow.total_payload() + 40 * len(flow)

    def test_endpoints(self):
        flow = build_flow()
        assert flow.client_ip() == CLIENT_IP
        assert flow.server_ip() == SERVER_IP

    def test_raw_packets_order(self):
        flow = build_flow()
        raw = flow.raw_packets()
        assert [p.timestamp for p in raw] == sorted(p.timestamp for p in raw)
