"""Tests for the inter-flow distance rule (equation 4)."""

import pytest

from repro.flows.distance import (
    MAX_PACKET_DISTANCE,
    SIMILARITY_PERCENT,
    max_inter_flow_distance,
    similarity_threshold,
    vector_distance,
    vectors_similar,
)


class TestVectorDistance:
    def test_identical_is_zero(self):
        assert vector_distance((1, 2, 3), (1, 2, 3)) == 0

    def test_l1(self):
        assert vector_distance((0, 0), (3, 4)) == 7

    def test_symmetric(self):
        a, b = (4, 16, 32), (5, 20, 30)
        assert vector_distance(a, b) == vector_distance(b, a)

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (5, 5), (10, 0)
        assert vector_distance(a, c) <= vector_distance(a, b) + vector_distance(b, c)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths"):
            vector_distance((1,), (1, 2))

    def test_empty_vectors(self):
        assert vector_distance((), ()) == 0


class TestPaperConstants:
    def test_constants(self):
        assert MAX_PACKET_DISTANCE == 50
        assert SIMILARITY_PERCENT == 2.0

    def test_max_inter_flow_distance(self):
        # "for flows with n packets, the maximum inter flow distance is n*50"
        assert max_inter_flow_distance(10) == 500

    def test_threshold_equals_n_for_paper_constants(self):
        # Equation 4 simplifies to d_max = n.
        for n in (1, 7, 50):
            assert similarity_threshold(n) == pytest.approx(float(n))

    def test_threshold_custom_percent(self):
        assert similarity_threshold(10, percent=10.0) == pytest.approx(50.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            max_inter_flow_distance(-1)
        with pytest.raises(ValueError):
            similarity_threshold(5, percent=-1.0)


class TestSimilarity:
    def test_identical_similar(self):
        assert vectors_similar((4, 16, 32), (4, 16, 32))

    def test_strictly_below_threshold(self):
        # n=3 -> d_max=3; distance 2 passes, distance 3 does not ("lower
        # than").
        assert vectors_similar((0, 0, 0), (1, 1, 0))
        assert not vectors_similar((0, 0, 0), (1, 1, 1))

    def test_zero_percent_means_exact_only(self):
        assert not vectors_similar((1, 2), (1, 3), percent=0.0)
        # distance 0 is not < 0 either: exact match also fails the strict
        # rule, which the compressor handles by checking distance < max(eps)
        assert not vectors_similar((1, 2), (1, 2), percent=0.0)
