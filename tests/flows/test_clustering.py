"""Tests for the flow clustering (section 2.1)."""

import pytest

from repro.flows.assembler import assemble_flows
from repro.flows.clustering import (
    Cluster,
    cluster_flows,
    cluster_vectors,
    nearest_cluster,
)

from tests.conftest import make_web_flow


class TestCluster:
    def test_admits_similar(self):
        cluster = Cluster(center=(10, 10, 10))
        assert cluster.admits((10, 10, 11))  # distance 1 < d_max 3

    def test_rejects_far(self):
        cluster = Cluster(center=(10, 10, 10))
        assert not cluster.admits((20, 20, 20))

    def test_rejects_different_length(self):
        cluster = Cluster(center=(10, 10))
        assert not cluster.admits((10, 10, 10))

    def test_length_property(self):
        assert Cluster(center=(1, 2, 3)).length == 3


class TestClusterVectors:
    def test_identical_vectors_one_cluster(self):
        result = cluster_vectors([(4, 16, 32)] * 20)
        assert result.cluster_count() == 1
        assert result.vector_count == 20
        assert result.largest_cluster().member_count == 20

    def test_different_lengths_never_merge(self):
        result = cluster_vectors([(1, 2), (1, 2, 3)])
        assert result.cluster_count() == 2

    def test_dissimilar_same_length_split(self):
        result = cluster_vectors([(0, 0, 0), (50, 50, 50)])
        assert result.cluster_count() == 2

    def test_first_vector_becomes_center(self):
        result = cluster_vectors([(5, 5, 5), (5, 5, 6)])
        (group,) = result.clusters_by_length.values()
        assert group[0].center == (5, 5, 5)
        assert group[0].member_count == 2

    def test_compression_opportunity(self):
        result = cluster_vectors([(1, 1, 1)] * 9 + [(40, 40, 40)])
        assert result.compression_opportunity() == pytest.approx(0.8)

    def test_empty_input(self):
        result = cluster_vectors([])
        assert result.cluster_count() == 0
        assert result.compression_opportunity() == 0.0
        assert result.largest_cluster() is None

    def test_cluster_sizes_descending(self):
        result = cluster_vectors(
            [(1, 1, 1)] * 3 + [(40, 40, 40)] * 5 + [(90, 90, 90)]
        )
        assert result.cluster_sizes() == [5, 3, 1]


class TestClusterFlows:
    def test_web_flows_cluster_tightly(self):
        # Fifty identical-shape Web flows: the paper's observation that
        # "we can group a high amount of them into few clusters".
        packets = []
        for index in range(50):
            packets.extend(
                make_web_flow(start=index * 1.0, client_port=2000 + index)
            )
        flows = assemble_flows(sorted(packets, key=lambda p: p.timestamp))
        result = cluster_flows(flows)
        assert result.vector_count == 50
        assert result.cluster_count() == 1

    def test_mixed_sizes_cluster_per_length(self):
        packets = []
        for index in range(10):
            packets.extend(
                make_web_flow(
                    start=index * 1.0,
                    client_port=2000 + index,
                    data_packets=2 if index % 2 else 4,
                )
            )
        flows = assemble_flows(sorted(packets, key=lambda p: p.timestamp))
        result = cluster_flows(flows)
        assert result.cluster_count() == 2


class TestNearestCluster:
    def test_nearest(self):
        clusters = [Cluster((0, 0)), Cluster((10, 10)), Cluster((1, 2, 3))]
        index, distance = nearest_cluster((9, 9), clusters)
        assert index == 1
        assert distance == 2

    def test_no_matching_length(self):
        assert nearest_cluster((1, 2, 3, 4), [Cluster((0, 0))]) is None
