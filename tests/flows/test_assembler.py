"""Tests for the flow assembler."""

import pytest

from repro.flows.assembler import (
    AssemblerConfig,
    FlowAssembler,
    assemble_flows,
    iter_flows,
)
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN

from tests.conftest import CLIENT_IP, SERVER_IP, make_web_flow


class TestBasicAssembly:
    def test_single_flow(self, web_flow_packets):
        flows = assemble_flows(web_flow_packets)
        assert len(flows) == 1
        assert len(flows[0]) == len(web_flow_packets)

    def test_flow_closed_on_fin(self, web_flow_packets):
        assembler = FlowAssembler()
        closed = []
        for packet in web_flow_packets:
            closed.extend(assembler.add(packet))
        # The FIN closes the flow without needing flush().
        assert len(closed) == 1
        assert assembler.active_count == 0

    def test_flow_closed_on_rst(self):
        packets = [
            PacketRecord(1.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_SYN),
            PacketRecord(1.1, SERVER_IP, CLIENT_IP, 80, 2000, flags=TCP_RST),
        ]
        flows = assemble_flows(packets)
        assert len(flows) == 1
        assert len(flows[0]) == 2

    def test_flush_emits_unterminated(self):
        packets = [
            PacketRecord(1.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK)
        ]
        assembler = FlowAssembler()
        assert assembler.add(packets[0]) == []
        assert len(assembler.flush()) == 1

    def test_two_interleaved_flows(self):
        a = make_web_flow(start=0.0, client_port=2000)
        b = make_web_flow(start=0.01, client_port=2001)
        merged = sorted(a + b, key=lambda p: p.timestamp)
        flows = assemble_flows(merged)
        assert len(flows) == 2
        assert {f.key.src_port for f in flows} == {2000, 2001}

    def test_flows_sorted_by_start_time(self):
        a = make_web_flow(start=5.0, client_port=2000)
        b = make_web_flow(start=1.0, client_port=2001)
        merged = sorted(a + b, key=lambda p: p.timestamp)
        flows = assemble_flows(merged)
        assert flows[0].start_time() < flows[1].start_time()


class TestReuseAfterFin:
    def test_same_tuple_after_fin_is_new_flow(self):
        first = make_web_flow(start=0.0)
        second = make_web_flow(start=10.0)
        flows = assemble_flows(first + second)
        assert len(flows) == 2


class TestIdleTimeout:
    def test_idle_flow_expires(self):
        config = AssemblerConfig(idle_timeout=5.0)
        packets = [
            PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK),
            # 10 seconds later another conversation starts.
            PacketRecord(10.0, CLIENT_IP, SERVER_IP, 2001, 80, flags=TCP_ACK),
        ]
        assembler = FlowAssembler(config)
        assembler.add(packets[0])
        closed = assembler.add(packets[1])
        assert len(closed) == 1
        assert closed[0].key.src_port == 2000

    def test_active_flow_survives_within_timeout(self):
        config = AssemblerConfig(idle_timeout=5.0)
        assembler = FlowAssembler(config)
        assembler.add(
            PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK)
        )
        closed = assembler.add(
            PacketRecord(3.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK)
        )
        assert closed == []
        assert assembler.active_count == 1


class TestConfig:
    def test_min_packets_filter(self):
        config = AssemblerConfig(min_packets=3)
        packets = [
            PacketRecord(1.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_FIN)
        ]
        assert assemble_flows(packets, config) == []

    def test_close_on_fin_disabled(self, web_flow_packets):
        config = AssemblerConfig(close_on_fin=False)
        assembler = FlowAssembler(config)
        for packet in web_flow_packets:
            assert assembler.add(packet) == []
        assert assembler.active_count == 1

    def test_completed_count(self, web_flow_packets):
        assembler = FlowAssembler()
        for packet in web_flow_packets:
            assembler.add(packet)
        assert assembler.completed_count == 1


class TestStreaming:
    def test_iter_flows_matches_batch(self, multi_flow_trace):
        streamed = list(iter_flows(multi_flow_trace.packets))
        batch = assemble_flows(multi_flow_trace.packets)
        assert len(streamed) == len(batch) == 50
