"""Tests for the section 2 flow characterization."""

import pytest

from repro.flows.assembler import assemble_flows
from repro.flows.characterize import (
    DEFAULT_WEIGHTS,
    CharacterizationConfig,
    Weights,
    ack_dependence_class,
    characterize_flow,
    decode_packet_value,
    flag_class,
    payload_size_class,
)
from repro.flows.model import Direction
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN

from tests.conftest import make_web_flow


class TestWeights:
    def test_paper_defaults(self):
        assert DEFAULT_WEIGHTS.as_tuple() == (16, 4, 1)

    def test_max_packet_value(self):
        # 16*3 + 4*1 + 1*2 = 54 (see DESIGN.md deviation 2).
        assert DEFAULT_WEIGHTS.max_packet_value() == 54

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Weights(flags=-1)


class TestFeatureFunctions:
    def test_flag_class_matches_tcp_module(self):
        assert flag_class(TCP_SYN) == 0
        assert flag_class(TCP_SYN | TCP_ACK) == 1
        assert flag_class(TCP_ACK) == 2
        assert flag_class(TCP_FIN | TCP_ACK) == 3

    def test_dependence_first_packet_not_dependent(self):
        assert ack_dependence_class(Direction.CLIENT_TO_SERVER, None) == 1

    def test_dependence_direction_change(self):
        assert (
            ack_dependence_class(
                Direction.SERVER_TO_CLIENT, Direction.CLIENT_TO_SERVER
            )
            == 0
        )

    def test_dependence_same_direction(self):
        assert (
            ack_dependence_class(
                Direction.CLIENT_TO_SERVER, Direction.CLIENT_TO_SERVER
            )
            == 1
        )

    def test_payload_classes(self):
        assert payload_size_class(0) == 0
        assert payload_size_class(1) == 1
        assert payload_size_class(500) == 1
        assert payload_size_class(501) == 2
        assert payload_size_class(1460) == 2

    def test_payload_negative_rejected(self):
        with pytest.raises(ValueError):
            payload_size_class(-1)

    def test_payload_custom_boundary(self):
        assert payload_size_class(800, small_max=1000) == 1


class TestCharacterizeFlow:
    def test_web_flow_vector(self, web_flow_packets):
        (flow,) = assemble_flows(web_flow_packets)
        vector = characterize_flow(flow)
        # SYN: g=(0,1,0) -> 4;  SYN+ACK: (1,0,0) -> 16;  ACK: (2,0,0) -> 32;
        # request: (2,1,1) -> 37;  data: (2,0,2) -> 34, (2,1,2) -> 38;
        # ack: (2,0,0) -> 32;  FIN: (3,1,0) -> 52.
        assert vector == (4, 16, 32, 37, 34, 38, 32, 52)

    def test_vector_length_equals_flow_length(self, multi_flow_trace):
        for flow in assemble_flows(multi_flow_trace.packets):
            assert len(characterize_flow(flow)) == len(flow)

    def test_identical_flows_identical_vectors(self):
        a = make_web_flow(start=0.0, client_port=2000)
        b = make_web_flow(start=100.0, client_port=3000, client_ip=0x8D5A0909)
        (flow_a,) = assemble_flows(a)
        (flow_b,) = assemble_flows(b)
        assert characterize_flow(flow_a) == characterize_flow(flow_b)

    def test_custom_weights_scale_values(self, web_flow_packets):
        (flow,) = assemble_flows(web_flow_packets)
        doubled = CharacterizationConfig(weights=Weights(32, 8, 2))
        assert characterize_flow(flow, doubled) == tuple(
            2 * v for v in characterize_flow(flow)
        )


class TestDecode:
    def test_roundtrip_all_triples(self):
        for g1 in range(4):
            for g2 in range(2):
                for g3 in range(3):
                    value = 16 * g1 + 4 * g2 + g3
                    assert decode_packet_value(value) == (g1, g2, g3)

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            decode_packet_value(16 * 4)  # g1 would be 4

    def test_non_place_value_weights_rejected(self):
        config = CharacterizationConfig(weights=Weights(1, 1, 1))
        with pytest.raises(ValueError, match="place-value"):
            decode_packet_value(3, config)

    def test_zero_payload_weight_rejected(self):
        config = CharacterizationConfig(weights=Weights(16, 4, 0))
        with pytest.raises(ValueError, match="place-value"):
            decode_packet_value(3, config)
