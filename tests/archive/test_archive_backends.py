"""Backend codecs through the archive and streaming layers.

The backend choice is a *storage* concern: whatever codec stores a
segment, the decoded datasets — and therefore replayed packets — must be
identical.  Canonical identity is checked through the legacy raw
serialization of each decoded segment.
"""

import pytest

from repro.archive import ArchiveReader, ArchiveWriter, build_archive
from repro.core import compress_stream_to_bytes, deserialize_compressed
from repro.core.backends import get_backend
from repro.core.codec import serialize_compressed_v1
from repro.core.streaming import StreamingCompressor
from repro.query import MatchAll, QueryEngine, TimeRange
from repro.synth import generate_web_trace

BACKENDS = ("raw", "zlib", "bz2", "lzma", "auto")


@pytest.fixture(scope="module")
def trace():
    return generate_web_trace(duration=6.0, flow_rate=25.0, seed=13)


@pytest.fixture(scope="module")
def raw_archive(tmp_path_factory, trace):
    path = tmp_path_factory.mktemp("backend-archives") / "raw.fctca"
    build_archive(path, trace.packets, segment_span=2.0, name="arch")
    return path


def _segment_canon(path) -> list[bytes]:
    with ArchiveReader(path) as reader:
        return [
            serialize_compressed_v1(segment)
            for _index, segment in reader.iter_segments()
        ]


class TestArchiveBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_segments_identical_across_backends(
        self, tmp_path, trace, raw_archive, backend
    ):
        path = tmp_path / f"{backend}.fctca"
        build_archive(
            path, trace.packets, segment_span=2.0, backend=backend, name="arch"
        )
        assert _segment_canon(path) == _segment_canon(raw_archive)

    def test_entropy_backend_shrinks_segments(self, tmp_path, trace, raw_archive):
        path = tmp_path / "small.fctca"
        build_archive(path, trace.packets, segment_span=2.0, backend="zlib")
        with ArchiveReader(raw_archive) as raw, ArchiveReader(path) as zl:
            raw_bytes = sum(e.length for e in raw.entries)
            zlib_bytes = sum(e.length for e in zl.entries)
        assert zlib_bytes < raw_bytes

    def test_index_records_the_tags(self, tmp_path, trace):
        path = tmp_path / "tagged.fctca"
        build_archive(path, trace.packets, segment_span=2.0, backend="lzma")
        tag = get_backend("lzma").tag
        with ArchiveReader(path) as reader:
            assert reader.entries
            for entry in reader.entries:
                assert set(entry.section_backends) == {tag}

    def test_replay_identical_across_backends(self, tmp_path, trace, raw_archive):
        path = tmp_path / "replay.fctca"
        build_archive(path, trace.packets, segment_span=2.0, backend="bz2")
        with ArchiveReader(raw_archive) as a, ArchiveReader(path) as b:
            assert list(a.iter_packets()) == list(b.iter_packets())

    def test_append_mixes_backends(self, tmp_path, trace):
        path = tmp_path / "mixed.fctca"
        build_archive(path, trace.packets, segment_span=2.0, backend="zlib")
        extra = generate_web_trace(duration=2.0, flow_rate=25.0, seed=17)
        with ArchiveWriter.append(path, segment_span=2.0, backend="lzma") as writer:
            writer.feed(extra.packets)
        zlib_tag, lzma_tag = get_backend("zlib").tag, get_backend("lzma").tag
        with ArchiveReader(path) as reader:
            tags = {entry.section_backends[0] for entry in reader.entries}
            assert tags == {zlib_tag, lzma_tag}
            # Mixed-backend archives decode segment by segment regardless.
            for _index, segment in reader.iter_segments():
                assert segment.time_seq


class TestWriterValidation:
    def test_bad_level_fails_before_touching_the_path(self, tmp_path, trace):
        from repro.core.errors import CodecError

        path = tmp_path / "precious.fctca"
        build_archive(path, trace.packets, segment_span=2.0)
        before = path.read_bytes()
        with pytest.raises(CodecError, match="outside"):
            ArchiveWriter.create(path, backend="zlib", level=42)
        with pytest.raises(CodecError, match="outside"):
            ArchiveWriter.append(path, backend="zlib", level=42)
        # The existing archive survives the rejected request untouched.
        assert path.read_bytes() == before

    def test_unknown_backend_fails_before_touching_the_path(self, tmp_path):
        from repro.core.errors import CodecError

        path = tmp_path / "never-created.fctca"
        with pytest.raises(CodecError, match="unknown backend"):
            ArchiveWriter.create(path, backend="zstd")
        assert not path.exists()


class TestQueryOverBackends:
    def test_query_results_independent_of_backend(
        self, tmp_path, trace, raw_archive
    ):
        path = tmp_path / "query.fctca"
        build_archive(path, trace.packets, segment_span=2.0, backend="auto")
        predicate = TimeRange(1.0, 4.0)
        with ArchiveReader(raw_archive) as a, ArchiveReader(path) as b:
            assert (
                QueryEngine(a).run(predicate).flows
                == QueryEngine(b).run(predicate).flows
            )

    def test_filter_preserves_source_backends(self, tmp_path, trace):
        source = tmp_path / "src.fctca"
        build_archive(source, trace.packets, segment_span=2.0, backend="zlib")
        out = tmp_path / "out.fctca"
        with ArchiveReader(source) as reader:
            QueryEngine(reader).filter_to(out, MatchAll())
        tag = get_backend("zlib").tag
        with ArchiveReader(out) as reader:
            assert reader.entries
            for entry in reader.entries:
                assert set(entry.section_backends) == {tag}

    def test_filter_bad_level_fails_before_truncating_output(
        self, tmp_path, trace
    ):
        from repro.core.errors import CodecError

        source = tmp_path / "src.fctca"
        build_archive(source, trace.packets, segment_span=2.0)
        out = tmp_path / "out.fctca"
        out.write_bytes(b"previous contents the user cares about")
        with ArchiveReader(source) as reader:
            with pytest.raises(CodecError, match="outside"):
                QueryEngine(reader).filter_to(
                    out, MatchAll(), backend="zlib", level=99
                )
            assert reader.segments_decoded == 0  # failed before any scan
        assert out.read_bytes() == b"previous contents the user cares about"

    def test_filter_can_recompress(self, tmp_path, trace):
        source = tmp_path / "src.fctca"
        build_archive(source, trace.packets, segment_span=2.0)
        out = tmp_path / "out.fctca"
        with ArchiveReader(source) as reader:
            QueryEngine(reader).filter_to(out, MatchAll(), backend="bz2")
        tag = get_backend("bz2").tag
        with ArchiveReader(out) as reader:
            assert reader.entries
            for entry in reader.entries:
                assert set(entry.section_backends) == {tag}


class TestStreamingBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stream_and_batch_serialize_identically(self, trace, backend):
        streamed, _ = compress_stream_to_bytes(
            iter(trace.packets), name="t", backend=backend
        )
        compressor = StreamingCompressor(name="t")
        compressor.feed(trace.packets)
        assert compressor.to_bytes(backend=backend) == streamed
        assert (
            serialize_compressed_v1(deserialize_compressed(streamed))
            == serialize_compressed_v1(compressor.finish())
        )

    def test_one_compressor_many_backends(self, trace):
        compressor = StreamingCompressor(name="t")
        compressor.feed(trace.packets)
        canon = serialize_compressed_v1(compressor.finish())
        for backend in BACKENDS:
            data = compressor.to_bytes(backend=backend)
            assert serialize_compressed_v1(deserialize_compressed(data)) == canon
