"""Integration: archive writer rotation, reader access, append."""

import pytest

from repro.archive import ArchiveReader, ArchiveWriter, build_archive
from repro.core.compressor import compress_trace
from repro.core.errors import ArchiveError
from tests.conftest import make_timed_flows, make_web_flow

DESTINATIONS = (0xC0A80001, 0xC0A80002, 0xC0A80003)


@pytest.fixture
def archive_path(tmp_path):
    return tmp_path / "trace.fctca"


class TestRotation:
    def test_rotates_by_time_span(self, archive_path):
        packets = make_timed_flows(12, spacing=10.0)
        entries = build_archive(
            archive_path, packets, segment_span=30.0, segment_packets=10**9
        )
        # 12 flows spaced 10 s apart with 30 s segments -> 4 segments.
        assert len(entries) == 4
        assert all(entry.flow_count == 3 for entry in entries)

    def test_rotates_by_packet_count(self, archive_path):
        flow = make_web_flow()
        packets = make_timed_flows(10, spacing=1.0)
        entries = build_archive(
            archive_path, packets, segment_span=None,
            segment_packets=2 * len(flow),
        )
        assert len(entries) == 5

    def test_segments_are_time_disjoint_and_ordered(self, archive_path):
        packets = make_timed_flows(20, spacing=5.0)
        entries = build_archive(
            archive_path, packets, segment_span=20.0, segment_packets=10**9
        )
        for before, after in zip(entries, entries[1:]):
            assert before.time_max_units <= after.time_min_units
            assert before.offset + before.length == after.offset

    def test_empty_input_builds_empty_archive(self, archive_path):
        assert build_archive(archive_path, []) == []
        with ArchiveReader(archive_path) as reader:
            assert reader.segment_count == 0
            assert reader.time_bounds() is None

    def test_bad_rotation_bounds_rejected(self, archive_path):
        with pytest.raises(ValueError, match="segment_packets"):
            ArchiveWriter.create(archive_path, segment_packets=0)
        with pytest.raises(ValueError, match="segment_span"):
            ArchiveWriter.create(archive_path, segment_span=0.0)


class TestReader:
    def test_segment_contents_match_per_window_compression(self, archive_path):
        packets = make_timed_flows(9, spacing=10.0, destinations=DESTINATIONS)
        build_archive(
            archive_path, packets, segment_span=30.0, segment_packets=10**9
        )
        with ArchiveReader(archive_path) as reader:
            for index, segment in reader.iter_segments():
                window = [
                    p for p in packets
                    if index * 30.0 <= p.timestamp < (index + 1) * 30.0
                ]
                expected = compress_trace(window)
                assert segment.flow_count() == expected.flow_count()
                assert segment.addresses.addresses() == expected.addresses.addresses()

    def test_index_counts_match_decoded_segments(self, archive_path):
        packets = make_timed_flows(15, spacing=4.0, destinations=DESTINATIONS)
        build_archive(
            archive_path, packets, segment_span=12.0, segment_packets=10**9
        )
        with ArchiveReader(archive_path) as reader:
            assert reader.flow_count() == 15
            for index, segment in reader.iter_segments():
                entry = reader.entries[index]
                assert entry.flow_count == segment.flow_count()
                assert entry.packet_count == segment.original_packet_count
                bounds = segment.time_bounds()
                assert entry.time_min == pytest.approx(bounds[0], abs=1e-4)
                assert entry.time_max == pytest.approx(bounds[1], abs=1e-4)
                for address in segment.addresses:
                    assert entry.summary.may_contain(address)

    def test_mmap_and_plain_reads_agree(self, archive_path):
        build_archive(archive_path, make_timed_flows(6), segment_span=20.0)
        with ArchiveReader(archive_path, use_mmap=True) as mapped, \
                ArchiveReader(archive_path, use_mmap=False) as plain:
            assert mapped.segment_count == plain.segment_count
            for index in range(mapped.segment_count):
                assert mapped.read_segment_bytes(index) == bytes(
                    plain.read_segment_bytes(index)
                )

    def test_decode_statistics_count_only_loaded_segments(self, archive_path):
        build_archive(archive_path, make_timed_flows(8), segment_span=20.0)
        with ArchiveReader(archive_path) as reader:
            assert reader.segments_decoded == 0
            reader.load_segment(1)
            assert reader.segments_decoded == 1
            assert reader.bytes_decoded == reader.entries[1].length

    def test_segment_index_out_of_range(self, archive_path):
        build_archive(archive_path, make_timed_flows(2), segment_span=20.0)
        with ArchiveReader(archive_path) as reader:
            with pytest.raises(ArchiveError, match="out of range"):
                reader.load_segment(99)

    def test_rejects_non_archive_file(self, tmp_path):
        bogus = tmp_path / "bogus.fctca"
        bogus.write_bytes(b"not an archive at all, definitely not")
        with pytest.raises(ArchiveError, match="magic"):
            ArchiveReader(bogus)

    def test_rejects_truncated_archive(self, archive_path):
        build_archive(archive_path, make_timed_flows(4), segment_span=20.0)
        data = archive_path.read_bytes()
        archive_path.write_bytes(data[:-7])
        with pytest.raises(ArchiveError):
            ArchiveReader(archive_path)


class TestAppend:
    def test_append_extends_in_place(self, archive_path):
        build_archive(
            archive_path,
            make_timed_flows(6, spacing=10.0),
            segment_span=30.0,
            segment_packets=10**9,
        )
        with ArchiveWriter.append(
            archive_path, segment_span=30.0, segment_packets=10**9
        ) as writer:
            assert writer.segment_count == 2
            writer.feed(make_timed_flows(3, spacing=10.0, start=100.0))
        with ArchiveReader(archive_path) as reader:
            assert reader.segment_count == 3
            assert reader.flow_count() == 9
            # The appended segment shares the original epoch clock.
            assert reader.entries[2].time_min == pytest.approx(100.0, abs=1e-4)
            total = sum(s.flow_count() for _, s in reader.iter_segments())
            assert total == 9

    def test_append_preserves_existing_segment_bytes(self, archive_path):
        build_archive(archive_path, make_timed_flows(4), segment_span=20.0)
        with ArchiveReader(archive_path) as reader:
            before = [
                reader.read_segment_bytes(i) for i in range(reader.segment_count)
            ]
        with ArchiveWriter.append(archive_path) as writer:
            writer.feed(make_timed_flows(2, start=500.0))
        with ArchiveReader(archive_path) as reader:
            after = [
                reader.read_segment_bytes(i) for i in range(len(before))
            ]
        assert [bytes(b) for b in before] == [bytes(a) for a in after]

    def test_append_to_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ArchiveWriter.append(tmp_path / "absent.fctca")

    def test_failed_append_preserves_existing_segments(self, archive_path):
        """A feed that blows up mid-append must not corrupt the archive."""
        build_archive(archive_path, make_timed_flows(6), segment_span=20.0)
        with ArchiveReader(archive_path) as reader:
            flows_before = reader.flow_count()

        def exploding_feed():
            yield from make_timed_flows(1, start=500.0)
            raise FileNotFoundError("source vanished mid-read")

        with pytest.raises(FileNotFoundError):
            with ArchiveWriter.append(archive_path) as writer:
                writer.feed(exploding_feed())
        # The old footer was truncated on open; __exit__ must seal the
        # file back into a valid archive with the original segments.
        with ArchiveReader(archive_path) as reader:
            assert reader.flow_count() == flows_before

    def test_failed_build_leaves_a_readable_archive(self, archive_path):
        with pytest.raises(RuntimeError):
            with ArchiveWriter.create(archive_path) as writer:
                writer.feed(make_timed_flows(1))
                raise RuntimeError("interrupted")
        with ArchiveReader(archive_path) as reader:
            assert reader.segment_count == 0  # open segment discarded

    def test_closed_writer_rejects_packets(self, archive_path):
        writer = ArchiveWriter.create(archive_path)
        writer.feed(make_timed_flows(1))
        writer.close()
        with pytest.raises(ArchiveError, match="closed"):
            writer.add_packet(make_web_flow()[0])
