"""Seal durability: a closed archive survives a crash right after close.

The contract is two fsyncs — the archive file (bytes durable) and its
containing directory (the *name* durable).  These tests pin both calls
by intercepting ``os.fsync`` and mapping descriptors back to inodes.
"""

from __future__ import annotations

import io
import os

import pytest

from repro.archive.writer import ArchiveWriter, _fsync_stream_and_dir
from repro.synth import generate_web_trace


@pytest.fixture()
def trace():
    return generate_web_trace(duration=2.0, flow_rate=10.0, seed=5)


def _record_fsyncs(monkeypatch):
    """Patch os.fsync to collect the inodes it is called on."""
    real_fsync = os.fsync
    synced: list[int] = []

    def recording_fsync(fd):
        synced.append(os.fstat(fd).st_ino)
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)
    return synced


class TestSealFsync:
    def test_close_syncs_file_and_directory(self, tmp_path, trace, monkeypatch):
        path = tmp_path / "durable.fctca"
        synced = _record_fsyncs(monkeypatch)
        with ArchiveWriter.create(str(path)) as writer:
            writer.feed(list(trace))
        assert path.stat().st_ino in synced
        assert tmp_path.stat().st_ino in synced

    def test_fsync_failure_still_closes(self, tmp_path, trace, monkeypatch):
        path = tmp_path / "bestefort.fctca"

        def broken_fsync(fd):
            raise OSError("no sync for you")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        with ArchiveWriter.create(str(path)) as writer:
            writer.feed(list(trace))
        # Durability degraded, correctness did not: archive is readable.
        from repro.archive.reader import ArchiveReader

        with ArchiveReader(str(path)) as reader:
            assert reader.packet_count() == len(trace)

    def test_helper_degrades_on_memory_streams(self):
        _fsync_stream_and_dir(io.BytesIO())  # must not raise

    def test_helper_ignores_streams_without_a_path(self, tmp_path):
        # A descriptor-backed stream with a non-path name: file fsync
        # happens, directory step is skipped, nothing raises.
        read_end, write_end = os.pipe()
        os.close(read_end)
        stream = os.fdopen(write_end, "wb")
        try:
            _fsync_stream_and_dir(stream)  # pipes reject fsync: no-op
        finally:
            stream.close()
