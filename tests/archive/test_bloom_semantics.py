"""AddressSummary Bloom semantics: false positives only, never negatives.

The footer index prunes segments whose summary says an address cannot
occur — a false negative would silently drop flows from query results,
so ``may_contain`` must return True for every inserted address, before
and after the ``SUMMARY_BLOOM`` payload's serialization roundtrip.
"""

from __future__ import annotations

import random

import pytest

from repro.archive.format import (
    EXACT_SUMMARY_MAX,
    SUMMARY_BLOOM,
    SUMMARY_EXACT,
    AddressSummary,
)


def _addresses(seed: int, count: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(32) for _ in range(count)]


class TestBloomNeverFalseNegative:
    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_every_member_reports_maybe(self, seed):
        members = _addresses(seed, EXACT_SUMMARY_MAX * 3)
        summary = AddressSummary.build(members)
        assert summary.mode == SUMMARY_BLOOM
        assert all(summary.may_contain(address) for address in members)

    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_roundtrip_preserves_membership(self, seed):
        """Serialize → parse must not flip a single member to False."""
        members = _addresses(seed, EXACT_SUMMARY_MAX * 3)
        summary = AddressSummary.build(members)
        restored = AddressSummary.from_payload(summary.mode, summary.payload())
        assert restored.mode == SUMMARY_BLOOM
        assert restored.bloom == summary.bloom
        assert all(restored.may_contain(address) for address in members)

    def test_single_address_ranges_use_membership(self):
        members = _addresses(99, EXACT_SUMMARY_MAX * 3)
        restored = AddressSummary.from_payload(
            SUMMARY_BLOOM, AddressSummary.build(members).payload()
        )
        for address in members[:256]:
            assert restored.may_contain_range(address, address)

    def test_wide_ranges_degrade_to_maybe(self):
        summary = AddressSummary.build(_addresses(5, EXACT_SUMMARY_MAX + 1))
        assert summary.may_contain_range(0, 2**32 - 1)
        assert summary.may_contain_range(1, 2)

    def test_false_positive_rate_stays_small(self):
        """~10 bits/address, 4 hashes → well under a 5% FP rate."""
        members = set(_addresses(42, EXACT_SUMMARY_MAX * 4))
        summary = AddressSummary.build(members)
        rng = random.Random(4242)
        probes = [
            address
            for address in (rng.getrandbits(32) for _ in range(4000))
            if address not in members
        ]
        positives = sum(1 for address in probes if summary.may_contain(address))
        assert positives / len(probes) < 0.05

    def test_empty_bloom_payload_contains_nothing(self):
        restored = AddressSummary.from_payload(SUMMARY_BLOOM, b"")
        assert not restored.may_contain(1)

    def test_exact_summaries_stay_exact_under_the_cap(self):
        members = _addresses(3, EXACT_SUMMARY_MAX)
        summary = AddressSummary.build(members)
        assert summary.mode == SUMMARY_EXACT
        restored = AddressSummary.from_payload(summary.mode, summary.payload())
        assert all(restored.may_contain(address) for address in members)
        assert not restored.may_contain(
            next(a for a in range(2**32) if a not in set(members))
        )
