"""Unit: address summaries and index-entry serialization."""

import random

import pytest

from repro.archive.format import (
    EXACT_SUMMARY_MAX,
    SUMMARY_BLOOM,
    SUMMARY_EXACT,
    AddressSummary,
    SegmentIndexEntry,
    index_entry_for,
    pack_footer,
    unpack_footer,
)
from repro.core.codec import quantize_timestamp
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import ArchiveError


class TestAddressSummary:
    def test_small_sets_stay_exact(self):
        summary = AddressSummary.build([30, 10, 20, 10])
        assert summary.mode == SUMMARY_EXACT
        assert summary.addresses == (10, 20, 30)

    def test_exact_membership(self):
        summary = AddressSummary.build([10, 20, 30])
        assert summary.may_contain(20)
        assert not summary.may_contain(25)

    def test_exact_range(self):
        summary = AddressSummary.build([10, 20, 30])
        assert summary.may_contain_range(15, 25)
        assert not summary.may_contain_range(21, 29)
        assert not summary.may_contain_range(31, 100)
        assert not summary.may_contain_range(25, 15)  # empty range

    def test_large_sets_become_bloom(self):
        addresses = list(range(EXACT_SUMMARY_MAX + 1))
        summary = AddressSummary.build(addresses)
        assert summary.mode == SUMMARY_BLOOM

    def test_bloom_has_no_false_negatives(self):
        rng = random.Random(7)
        addresses = [rng.randrange(2**32) for _ in range(EXACT_SUMMARY_MAX + 200)]
        summary = AddressSummary.build(addresses)
        assert all(summary.may_contain(a) for a in addresses)

    def test_bloom_rejects_most_absent_addresses(self):
        rng = random.Random(11)
        present = {rng.randrange(2**32) for _ in range(EXACT_SUMMARY_MAX + 200)}
        summary = AddressSummary.build(present)
        absent = [a for a in (rng.randrange(2**32) for _ in range(2000))
                  if a not in present]
        false_positives = sum(summary.may_contain(a) for a in absent)
        # 10 bits/address + 4 hashes puts the theoretical rate ~1%.
        assert false_positives < len(absent) * 0.05

    def test_bloom_range_is_conservative(self):
        summary = AddressSummary.build(range(EXACT_SUMMARY_MAX + 1))
        assert summary.may_contain_range(10**9, 2 * 10**9)  # cannot refute

    def test_payload_roundtrip(self):
        for addresses in ([1, 2, 3], range(EXACT_SUMMARY_MAX + 1)):
            summary = AddressSummary.build(addresses)
            restored = AddressSummary.from_payload(summary.mode, summary.payload())
            assert restored == summary

    def test_unknown_mode_rejected(self):
        with pytest.raises(ArchiveError, match="unknown address summary"):
            AddressSummary.from_payload(9, b"")


def _segment(timestamps=(1.0, 2.0), dst=0xC0A80050) -> CompressedTrace:
    compressed = CompressedTrace(name="seg")
    compressed.short_templates.append(ShortFlowTemplate((1, 2, 3)))
    compressed.long_templates.append(
        LongFlowTemplate((4,) * 60, (0.001,) * 60)
    )
    index = compressed.addresses.intern(dst)
    for position, timestamp in enumerate(timestamps):
        dataset = DatasetId.SHORT if position % 2 == 0 else DatasetId.LONG
        compressed.time_seq.append(
            TimeSeqRecord(timestamp, dataset, 0, index, rtt=0.05)
        )
    compressed.original_packet_count = 63
    return compressed


class TestIndexEntry:
    def test_entry_for_segment(self):
        entry = index_entry_for(_segment(), offset=16, length=100)
        assert entry.offset == 16 and entry.length == 100
        assert entry.time_min_units == quantize_timestamp(1.0)
        assert entry.time_max_units == quantize_timestamp(2.0)
        assert entry.flow_count == 2
        assert entry.short_flow_count == 1
        assert entry.long_flow_count == 1
        assert entry.packet_count == 63
        assert entry.min_flow_packets == 3
        assert entry.max_flow_packets == 60
        assert entry.address_count == 1
        assert entry.summary.may_contain(0xC0A80050)

    def test_empty_segment_rejected(self):
        with pytest.raises(ArchiveError, match="empty segment"):
            index_entry_for(CompressedTrace(), offset=0, length=0)

    def test_footer_roundtrip(self):
        entries = [
            index_entry_for(_segment((float(i), float(i) + 0.5)), 16 + i, 10)
            for i in range(5)
        ]
        assert unpack_footer(pack_footer(entries)) == entries

    def test_footer_roundtrip_empty(self):
        assert unpack_footer(pack_footer([])) == []

    def test_truncated_footer_rejected(self):
        footer = pack_footer([index_entry_for(_segment(), 16, 10)])
        with pytest.raises(ArchiveError):
            unpack_footer(footer[:-3])

    def test_entry_unpack_rejects_short_buffer(self):
        with pytest.raises(ArchiveError, match="truncated"):
            SegmentIndexEntry.unpack(b"\x00" * 8, 0)
