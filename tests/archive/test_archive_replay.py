"""Archive-scale streaming replay: seam-ordered, lazy, parallel-safe."""

import pytest

from repro.archive import ArchiveReader, build_archive, segment_runs
from repro.core.decompressor import decompress_trace, merge_sort_key
from repro.core.replay import ReplayStats
from repro.trace.tsh import write_tsh_bytes

from tests.conftest import make_timed_flows


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    """A 10-segment archive of 50 staggered flows (5 s apart, 30 s span)."""
    path = tmp_path_factory.mktemp("replay") / "flows.fctca"
    packets = make_timed_flows(50, spacing=5.0)
    build_archive(path, iter(packets), segment_span=30.0, segment_packets=10_000)
    return path


def reference_packets(path):
    """Concat per-segment batch decompressions, globally stable-sorted."""
    merged = []
    with ArchiveReader(path) as reader:
        for index in range(reader.segment_count):
            merged.extend(decompress_trace(reader.load_segment(index)).packets)
    merged.sort(key=merge_sort_key)
    return merged


class TestSequentialReplay:
    def test_matches_per_segment_batch_reference(self, archive_path):
        reference = reference_packets(archive_path)
        with ArchiveReader(archive_path) as reader:
            streamed = list(reader.iter_packets())
        assert write_tsh_bytes(streamed) == write_tsh_bytes(reference)

    def test_output_is_time_ordered(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            timestamps = [p.timestamp for p in reader.iter_packets()]
        assert timestamps == sorted(timestamps)
        assert timestamps  # not vacuous

    def test_segments_decode_lazily(self, archive_path):
        """Consuming the head of the stream must not decode the tail."""
        with ArchiveReader(archive_path) as reader:
            assert reader.segment_count > 2
            stream = reader.iter_packets()
            for _ in range(5):
                next(stream)
            assert reader.segments_decoded < reader.segment_count

    def test_stats_report_bounded_fan_out(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            stats = ReplayStats()
            packets = sum(1 for _ in reader.iter_packets(stats=stats))
            assert stats.packets_emitted == packets
            assert stats.flows_replayed == reader.flow_count()
            # Flows are 5 s apart and last < 1 s: tiny concurrent set.
            assert stats.peak_open_flows <= 3

    def test_empty_iteration_over_no_segments(self, tmp_path):
        from repro.archive import ArchiveWriter

        path = tmp_path / "empty.fctca"
        ArchiveWriter.create(path).close()
        with ArchiveReader(path) as reader:
            assert list(reader.iter_packets()) == []


class TestParallelReplay:
    def test_byte_identical_to_sequential(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            sequential = write_tsh_bytes(reader.iter_packets())
        with ArchiveReader(archive_path) as reader:
            parallel = write_tsh_bytes(reader.iter_packets(workers=2))
        assert parallel == sequential

    def test_parallel_stats_count_work(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            stats = ReplayStats()
            packets = sum(1 for _ in reader.iter_packets(workers=2, stats=stats))
            assert stats.packets_emitted == packets
            assert stats.flows_replayed == reader.flow_count()

    def test_rejects_bad_worker_count(self, archive_path):
        with ArchiveReader(archive_path) as reader:
            with pytest.raises(ValueError, match="workers"):
                reader.iter_packets(workers=0)


class TestSegmentRuns:
    def _entry(self, lo, hi):
        from repro.archive.format import AddressSummary, SegmentIndexEntry

        return SegmentIndexEntry(
            offset=16, length=10, time_min_units=lo, time_max_units=hi,
            flow_count=1, short_flow_count=1, packet_count=1,
            min_flow_packets=1, max_flow_packets=1,
            min_rtt_units=0, max_rtt_units=0, address_count=1,
            summary=AddressSummary.build([1]),
        )

    def test_disjoint_segments_run_alone(self):
        entries = [self._entry(0, 10), self._entry(10, 20), self._entry(25, 30)]
        assert segment_runs(entries, [0, 1, 2]) == [[0], [1], [2]]

    def test_overlapping_segments_group(self):
        entries = [self._entry(0, 10), self._entry(5, 20), self._entry(25, 30)]
        assert segment_runs(entries, [0, 1, 2]) == [[0, 1], [2]]

    def test_chained_overlap_grows_one_run(self):
        entries = [self._entry(0, 30), self._entry(5, 10), self._entry(15, 40)]
        assert segment_runs(entries, [0, 1, 2]) == [[0, 1, 2]]

    def test_respects_index_subset(self):
        entries = [self._entry(0, 10), self._entry(5, 20), self._entry(25, 30)]
        assert segment_runs(entries, [0, 2]) == [[0], [2]]

    def test_segment_overlapping_an_earlier_run_regroups(self):
        """A late segment reaching back over an earlier run must land in
        one run with it — grouping walks time_min order, not file order."""
        entries = [self._entry(0, 10), self._entry(10, 20), self._entry(5, 15)]
        assert segment_runs(entries, [0, 1, 2]) == [[0, 2, 1]]

    def test_runs_never_interleave(self):
        """Invariant: consecutive runs' start ranges are disjoint."""
        import random

        rng = random.Random(11)
        for _ in range(100):
            entries = []
            for _ in range(rng.randrange(1, 8)):
                lo = rng.randrange(0, 50)
                entries.append(self._entry(lo, lo + rng.randrange(0, 30)))
            runs = segment_runs(entries, list(range(len(entries))))
            assert sorted(i for run in runs for i in run) == list(
                range(len(entries))
            )
            for earlier, later in zip(runs, runs[1:]):
                earlier_max = max(entries[i].time_max_units for i in earlier)
                later_min = min(entries[i].time_min_units for i in later)
                assert earlier_max <= later_min

    def test_overlapping_archive_still_replays_in_order(self, tmp_path):
        """Segments written out of time order (overlapping bounds) must
        still produce a globally sorted, reference-identical stream."""
        from repro.archive import ArchiveWriter
        from repro.core.compressor import FlowClusterCompressor

        def compress_with_base(packets):
            engine = FlowClusterCompressor(base_time=0.0)
            for packet in packets:
                engine.add_packet(packet)
            return engine.finish()

        path = tmp_path / "overlap.fctca"
        early = compress_with_base(make_timed_flows(3, spacing=4.0))
        late = compress_with_base(make_timed_flows(3, spacing=4.0, start=2.0))
        with ArchiveWriter.create(path, epoch=0.0) as writer:
            writer.write_segment(late)
            writer.write_segment(early)
        reference = reference_packets(path)
        with ArchiveReader(path) as reader:
            assert segment_runs(reader.entries, [0, 1]) == [[1, 0]]
            streamed = list(reader.iter_packets())
        assert write_tsh_bytes(streamed) == write_tsh_bytes(reference)

    def test_segment_behind_an_earlier_run_replays_in_order(self, tmp_path):
        """Regression: ranges like [0,10], [10,20], [5,15] — the third
        segment overlaps the *first* run; both replay paths must still
        match the batch reference and stay time-sorted."""
        from repro.archive import ArchiveWriter
        from repro.core.compressor import FlowClusterCompressor

        def compress_with_base(packets):
            engine = FlowClusterCompressor(base_time=0.0)
            for packet in packets:
                engine.add_packet(packet)
            return engine.finish()

        path = tmp_path / "backreach.fctca"
        with ArchiveWriter.create(path, epoch=0.0) as writer:
            for start in (0.0, 10.0, 5.0):
                writer.write_segment(
                    compress_with_base(
                        make_timed_flows(3, spacing=2.5, start=start)
                    )
                )
        reference = reference_packets(path)
        with ArchiveReader(path) as reader:
            streamed = list(reader.iter_packets())
        timestamps = [p.timestamp for p in streamed]
        assert timestamps == sorted(timestamps)
        assert write_tsh_bytes(streamed) == write_tsh_bytes(reference)
        with ArchiveReader(path) as reader:
            parallel = list(reader.iter_packets(workers=2))
        assert write_tsh_bytes(parallel) == write_tsh_bytes(streamed)
