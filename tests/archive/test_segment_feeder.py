"""SegmentFeeder and EpochRef: the per-stream half of archive building."""

from __future__ import annotations

import pytest

from repro.archive.writer import ArchiveWriter, EpochRef, SegmentFeeder
from repro.synth import generate_web_trace
from repro.trace.tsh import read_tsh_bytes


@pytest.fixture(scope="module")
def packets():
    trace = generate_web_trace(duration=6.0, flow_rate=20.0, seed=11)
    # Round-trip through TSH bytes so timestamps carry the same
    # microsecond quantization every real ingest path sees.
    return read_tsh_bytes(trace.to_tsh_bytes())


class TestEpochRef:
    def test_first_anchor_wins(self):
        ref = EpochRef()
        assert ref.value is None
        assert ref.anchor(10.5) == 10.5
        assert ref.anchor(3.0) == 10.5  # later (even earlier) stamps ignored
        assert ref.value == 10.5

    def test_preset_value_is_never_replaced(self):
        ref = EpochRef(2.0)
        assert ref.anchor(99.0) == 2.0


class TestSegmentFeeder:
    def test_rotates_at_packet_bound(self, packets):
        sealed = []
        feeder = SegmentFeeder(
            sealed.append,
            epoch=EpochRef(),
            segment_packets=100,
            segment_span=None,
        )
        feeder.feed(packets[:250])
        assert feeder.segments_sealed == 2
        assert feeder.packets_pending == 50
        assert feeder.close() == 3  # trailing partial segment sealed
        assert feeder.packets_pending == 0
        assert [trace.packet_count() for trace in sealed] == [100, 100, 50]

    def test_rotates_at_time_span(self, packets):
        sealed = []
        feeder = SegmentFeeder(
            sealed.append, epoch=EpochRef(), segment_span=2.0
        )
        feeder.feed(packets)
        feeder.close()
        first = packets[0].timestamp
        span = packets[-1].timestamp - first
        assert feeder.segments_sealed >= int(span // 2.0)
        for trace in sealed:
            times = trace.time_bounds()
            assert times[1] - times[0] < 2.0 + 1e-6

    def test_flush_forces_a_short_segment(self, packets):
        sealed = []
        feeder = SegmentFeeder(sealed.append, epoch=EpochRef())
        feeder.feed(packets[:7])
        assert not sealed
        assert feeder.flush()
        assert len(sealed) == 1
        assert not feeder.flush()  # nothing pending: no empty segment
        assert feeder.close() == 1

    def test_segment_names_follow_the_callback(self, packets):
        sealed = []
        feeder = SegmentFeeder(
            sealed.append,
            epoch=EpochRef(),
            segment_packets=50,
            segment_span=None,
            name="unix0",
        )
        feeder.feed(packets[:120])
        feeder.close()
        assert [trace.name for trace in sealed] == [
            "unix0/seg-00000",
            "unix0/seg-00001",
            "unix0/seg-00002",
        ]

    def test_shared_epoch_across_feeders(self, packets):
        """Two feeders on one ref compress against one time base."""
        ref = EpochRef()
        sealed_a, sealed_b = [], []
        feeder_a = SegmentFeeder(sealed_a.append, epoch=ref)
        feeder_b = SegmentFeeder(sealed_b.append, epoch=ref)
        feeder_a.feed(packets[:10])
        feeder_b.feed(packets[10:20])
        assert ref.value == packets[0].timestamp
        assert feeder_a.compressor.base_time == feeder_b.compressor.base_time
        feeder_a.close()
        feeder_b.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="segment_packets"):
            SegmentFeeder(lambda c: None, epoch=EpochRef(), segment_packets=0)
        with pytest.raises(ValueError, match="segment_span"):
            SegmentFeeder(lambda c: None, epoch=EpochRef(), segment_span=0.0)


class TestWriterEquivalence:
    def test_external_feeder_matches_writer_feed(self, tmp_path, packets):
        """A feeder sinking into write_segment builds the same bytes as
        the writer's own feed path — they are the same machinery."""
        direct = tmp_path / "direct.fctca"
        with ArchiveWriter.create(
            str(direct), segment_packets=80, segment_span=None, name="archive"
        ) as writer:
            writer.feed(packets)

        via_feeder = tmp_path / "feeder.fctca"
        writer = ArchiveWriter.create(
            str(via_feeder), segment_packets=80, segment_span=None, name="archive"
        )
        feeder = SegmentFeeder(
            writer.write_segment,
            epoch=writer.epoch_ref,
            segment_packets=80,
            segment_span=None,
            name="archive",
        )
        feeder.feed(packets)
        feeder.close()
        writer.close()

        assert direct.read_bytes() == via_feeder.read_bytes()
