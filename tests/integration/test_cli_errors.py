"""Integration: user-caused CLI failures exit 2 with one-line messages."""

import pytest

from repro.cli import main


@pytest.fixture
def missing(tmp_path):
    return tmp_path / "does-not-exist"


def _stderr_line(capsys) -> str:
    err = capsys.readouterr().err
    assert err.startswith("error:"), err
    assert len(err.strip().splitlines()) == 1, err
    return err


class TestMissingFiles:
    def test_compress_missing_input(self, tmp_path, missing, capsys):
        code = main(["compress", str(missing), str(tmp_path / "o.fctc")])
        assert code == 2
        assert "no such file" in _stderr_line(capsys)

    def test_compress_stream_missing_input(self, tmp_path, missing, capsys):
        code = main(
            ["compress", str(missing), str(tmp_path / "o.fctc"), "--stream"]
        )
        assert code == 2
        assert "no such file" in _stderr_line(capsys)

    def test_decompress_missing_input(self, tmp_path, missing, capsys):
        code = main(["decompress", str(missing), str(tmp_path / "o.tsh")])
        assert code == 2
        assert "no such file" in _stderr_line(capsys)

    def test_inspect_missing_input(self, missing, capsys):
        assert main(["inspect", str(missing)]) == 2
        assert "no such file" in _stderr_line(capsys)

    def test_archive_info_missing_input(self, missing, capsys):
        assert main(["archive", "info", str(missing)]) == 2
        assert "no such file" in _stderr_line(capsys)

    def test_query_missing_archive(self, missing, capsys):
        assert main(["query", str(missing)]) == 2
        assert "no such file" in _stderr_line(capsys)

    def test_failed_append_leaves_archive_readable(
        self, tmp_path, missing, capsys
    ):
        source = tmp_path / "t.tsh"
        assert main(["generate", str(source), "--duration", "2", "--seed", "1"]) == 0
        archive = tmp_path / "t.fctca"
        assert main(["archive", "build", str(archive), str(source)]) == 0
        capsys.readouterr()
        assert main(["archive", "append", str(archive), str(missing)]) == 2
        assert "no such file" in _stderr_line(capsys)
        # The typo'd append must not have destroyed the archive.
        assert main(["archive", "info", str(archive)]) == 0


class TestMalformedContainers:
    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.fctc"
        bogus.write_bytes(b"this is not a container")
        assert main(["inspect", str(bogus)]) == 2
        line = _stderr_line(capsys)
        assert "magic" in line or "truncated" in line


class TestTruncated:
    def test_decompress_rejects_truncated_container(self, tmp_path, capsys):
        source = tmp_path / "t.tsh"
        assert main(["generate", str(source), "--duration", "2", "--seed", "1"]) == 0
        compressed = tmp_path / "t.fctc"
        assert main(["compress", str(source), str(compressed)]) == 0
        compressed.write_bytes(compressed.read_bytes()[:-5])
        capsys.readouterr()
        assert main(["decompress", str(compressed), str(tmp_path / "o.tsh")]) == 2
        assert "truncated" in _stderr_line(capsys)

    def test_compress_rejects_truncated_tsh(self, tmp_path, capsys):
        source = tmp_path / "broken.tsh"
        source.write_bytes(b"\x00" * 50)  # not a multiple of 44
        assert main(["compress", str(source), str(tmp_path / "o.fctc")]) == 2
        assert "truncated" in _stderr_line(capsys)
