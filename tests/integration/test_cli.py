"""Integration: the repro-trace CLI."""

import pytest

from repro.cli import main
from repro.trace.trace import Trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.tsh"
    assert main(["generate", str(path), "--duration", "3", "--seed", "5"]) == 0
    return path


class TestGenerate:
    def test_creates_tsh(self, trace_file):
        assert trace_file.exists()
        trace = Trace.load_tsh(trace_file)
        assert len(trace) > 100


class TestCompressDecompress:
    def test_full_cycle(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        assert main(["compress", str(trace_file), str(compressed)]) == 0
        output = capsys.readouterr().out
        assert "ratio" in output
        assert compressed.stat().st_size < trace_file.stat().st_size / 10

        restored = tmp_path / "t2.tsh"
        assert main(["decompress", str(compressed), str(restored)]) == 0
        assert len(Trace.load_tsh(restored)) == len(Trace.load_tsh(trace_file))

    def test_inspect(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        main(["compress", str(trace_file), str(compressed)])
        capsys.readouterr()
        assert main(["inspect", str(compressed)]) == 0
        output = capsys.readouterr().out
        assert "short templates" in output
        assert "time_seq" in output

    def test_inspect_addresses(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        main(["compress", str(trace_file), str(compressed)])
        capsys.readouterr()
        assert main(["inspect", str(compressed), "--addresses"]) == 0
        output = capsys.readouterr().out
        assert "[0]" in output


class TestStats:
    def test_stats_output(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "flows" in output
        assert "paper: 98%" in output


class TestConvert:
    def test_tsh_to_pcap_and_back(self, tmp_path, trace_file):
        pcap = tmp_path / "t.pcap"
        assert main(["convert", str(trace_file), str(pcap)]) == 0
        back = tmp_path / "back.tsh"
        assert main(["convert", str(pcap), str(back)]) == 0
        original = Trace.load_tsh(trace_file)
        restored = Trace.load_tsh(back)
        assert len(original) == len(restored)
        assert [p.dst_ip for p in original] == [p.dst_ip for p in restored]
