"""Integration: the repro-trace CLI."""

import pytest

from repro.cli import main
from repro.trace.trace import Trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.tsh"
    assert main(["generate", str(path), "--duration", "3", "--seed", "5"]) == 0
    return path


class TestGenerate:
    def test_creates_tsh(self, trace_file):
        assert trace_file.exists()
        trace = Trace.load_tsh(trace_file)
        assert len(trace) > 100

    def test_default_is_the_web_scenario(self, tmp_path, trace_file):
        """Routing generate through the registry must not move a byte."""
        explicit = tmp_path / "web.tsh"
        assert (
            main(
                [
                    "generate",
                    str(explicit),
                    "--scenario",
                    "web",
                    "--duration",
                    "3",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
        assert explicit.read_bytes() == trace_file.read_bytes()

    def test_scenario_flag_selects_the_generator(self, tmp_path):
        path = tmp_path / "flood.tsh"
        args = ["generate", str(path), "--duration", "2", "--seed", "5"]
        assert main(args + ["--scenario", "flood"]) == 0
        assert len(Trace.load_tsh(path)) > 100

    def test_unknown_scenario_exits_2_listing_names(self, tmp_path, caplog):
        path = tmp_path / "x.tsh"
        args = ["generate", str(path), "--scenario", "bogus"]
        assert main(args) == 2
        assert not path.exists()
        message = "\n".join(r.getMessage() for r in caplog.records)
        assert "unknown scenario: 'bogus'" in message
        for name in ("web", "p2p", "flood", "mptcp"):
            assert name in message

    def test_list_scenarios(self, capsys):
        assert main(["generate", "--list-scenarios"]) == 0
        output = capsys.readouterr().out
        lines = [line for line in output.splitlines() if line.strip()]
        names = [line.split()[0] for line in lines]
        assert names == [
            "web",
            "p2p",
            "web-search",
            "data-mining",
            "mixed-protocol",
            "flood",
            "mptcp",
        ]
        # Every row carries a summary after the name column.
        assert all(len(line.split(None, 1)) == 2 for line in lines)

    def test_missing_output_without_list_is_an_error(self, caplog):
        assert main(["generate"]) == 2
        message = "\n".join(r.getMessage() for r in caplog.records)
        assert "output path required" in message


class TestFidelity:
    def test_prints_summary_table(self, capsys):
        args = ["fidelity", "--scenario", "web", "--duration", "1", "--rate", "16"]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "scenario" in output
        assert "ratio" in output
        assert "web" in output

    def test_writes_report_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "fidelity.json"
        args = [
            "fidelity",
            "--scenario",
            "flood",
            "--duration",
            "1",
            "--rate",
            "16",
            "--out",
            str(out),
        ]
        assert main(args) == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["schema"] == "repro.analysis/fidelity-report/v1"
        assert [s["scenario"] for s in document["scenarios"]] == ["flood"]

    def test_unknown_scenario_exits_2(self, caplog):
        assert main(["fidelity", "--scenario", "bogus"]) == 2
        message = "\n".join(r.getMessage() for r in caplog.records)
        assert "unknown scenario" in message


class TestCompressDecompress:
    def test_full_cycle(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        assert main(["compress", str(trace_file), str(compressed)]) == 0
        output = capsys.readouterr().out
        assert "ratio" in output
        assert compressed.stat().st_size < trace_file.stat().st_size / 10

        restored = tmp_path / "t2.tsh"
        assert main(["decompress", str(compressed), str(restored)]) == 0
        assert len(Trace.load_tsh(restored)) == len(Trace.load_tsh(trace_file))

    def test_inspect(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        main(["compress", str(trace_file), str(compressed)])
        capsys.readouterr()
        assert main(["inspect", str(compressed)]) == 0
        output = capsys.readouterr().out
        assert "short templates" in output
        assert "time_seq" in output

    def test_inspect_addresses(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        main(["compress", str(trace_file), str(compressed)])
        capsys.readouterr()
        assert main(["inspect", str(compressed), "--addresses"]) == 0
        output = capsys.readouterr().out
        assert "[0]" in output


class TestStats:
    def test_stats_output(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "flows" in output
        assert "paper: 98%" in output


class TestConvert:
    def test_tsh_to_pcap_and_back(self, tmp_path, trace_file):
        pcap = tmp_path / "t.pcap"
        assert main(["convert", str(trace_file), str(pcap)]) == 0
        back = tmp_path / "back.tsh"
        assert main(["convert", str(pcap), str(back)]) == 0
        original = Trace.load_tsh(trace_file)
        restored = Trace.load_tsh(back)
        assert len(original) == len(restored)
        assert [p.dst_ip for p in original] == [p.dst_ip for p in restored]
