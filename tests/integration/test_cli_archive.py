"""Integration: the archive/query CLI surface."""

import pytest

from repro.cli import main


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.tsh"
    assert main(["generate", str(path), "--duration", "6", "--seed", "5"]) == 0
    return path


@pytest.fixture
def archive_file(tmp_path, trace_file):
    path = tmp_path / "t.fctca"
    assert (
        main(
            [
                "archive", "build", str(path), str(trace_file),
                "--segment-span", "1.0",
            ]
        )
        == 0
    )
    return path


class TestArchiveBuild:
    def test_build_reports_segments(self, tmp_path, trace_file, capsys):
        path = tmp_path / "fresh.fctca"
        capsys.readouterr()
        assert (
            main(
                [
                    "archive", "build", str(path), str(trace_file),
                    "--segment-span", "1.0",
                ]
            )
            == 0
        )
        assert "segments" in capsys.readouterr().out
        assert path.exists()

    def test_append_grows_archive(self, tmp_path, trace_file, archive_file, capsys):
        capsys.readouterr()
        assert (
            main(["archive", "append", str(archive_file), str(trace_file)]) == 0
        )
        output = capsys.readouterr().out
        assert "appended" in output

    def test_info_prints_index_table(self, archive_file, capsys):
        capsys.readouterr()
        assert main(["archive", "info", str(archive_file)]) == 0
        output = capsys.readouterr().out
        assert "segments" in output
        assert "t_min" in output and "destinations" in output


class TestQuery:
    def test_query_prints_flows_and_stats(self, archive_file, capsys):
        capsys.readouterr()
        assert (
            main(["query", str(archive_file), "--since", "1", "--until", "3"])
            == 0
        )
        output = capsys.readouterr().out
        assert "seg=" in output and "dst=" in output
        assert "segments decoded" in output

    def test_query_time_pruning_decodes_partial_archive(
        self, archive_file, capsys
    ):
        capsys.readouterr()
        assert (
            main(["query", str(archive_file), "--since", "0", "--until", "0.5"])
            == 0
        )
        output = capsys.readouterr().out
        decoded_line = next(
            line for line in output.splitlines() if "segments decoded" in line
        )
        decoded, total = decoded_line.split(":")[1].split("(")[0].strip().split("/")
        assert int(decoded) < int(total)

    def test_query_kind_and_count_filters(self, archive_file, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "query", str(archive_file), "--kind", "short",
                    "--min-packets", "2", "--max-packets", "50",
                    "--limit", "3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.count("kind=short") <= 3

    def test_query_output_writes_subarchive(self, tmp_path, archive_file, capsys):
        out = tmp_path / "filtered.fctca"
        capsys.readouterr()
        assert (
            main(
                [
                    "query", str(archive_file), "--until", "2.0",
                    "--output", str(out),
                ]
            )
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        capsys.readouterr()
        assert main(["archive", "info", str(out)]) == 0
        assert "segments" in capsys.readouterr().out


class TestInspectSizes:
    def test_inspect_shows_percent_shares(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        assert main(["compress", str(trace_file), str(compressed)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(compressed)]) == 0
        output = capsys.readouterr().out
        assert "time_seq" in output and "%" in output
        assert "total" in output
