"""The acceptance scenario: a real daemon process, three concurrent
sources, SIGTERM mid-stream, and a sealed archive whose per-source
segments are byte-identical to offline compression of the same bytes.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.api.options import ArchiveOptions, Options
from repro.archive.reader import ArchiveReader
from repro.archive.writer import ArchiveWriter
from repro.synth import generate_web_trace
from repro.trace.framing import END_OF_STREAM, frame
from repro.trace.tsh import read_tsh_bytes

SEGMENT_SPAN = 5.0
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _workloads():
    """Three distinct traces, one per source."""
    out = {}
    for label, seed in (("unix0", 31), ("unix1", 32), ("tail2", 33)):
        trace = generate_web_trace(duration=10.0, flow_rate=25.0, seed=seed)
        out[label] = trace.to_tsh_bytes()
    return out


def _wait_for(path: str, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise TimeoutError(f"{path} never appeared")
        time.sleep(0.02)


def _send(sock_path: str, data: bytes) -> None:
    _wait_for(sock_path)
    client = socket.socket(socket.AF_UNIX)
    try:
        client.connect(sock_path)
        for start in range(0, len(data), 9973):
            client.sendall(frame(data[start : start + 9973]))
        client.sendall(END_OF_STREAM)
    finally:
        client.close()


def _offline(path, data: bytes, *, label: str, epoch: float) -> list[bytes]:
    """Per-source reference: the segments offline compression seals."""
    options = Options(
        name=label,
        archive=ArchiveOptions(segment_span=SEGMENT_SPAN, epoch=epoch),
    )
    with ArchiveWriter.create(path, options=options) as writer:
        writer.feed(read_tsh_bytes(data))
    with ArchiveReader(str(path)) as reader:
        return [
            reader.read_segment_bytes(i) for i in range(reader.segment_count)
        ]


def test_three_sources_sigterm_drain_byte_identical(tmp_path):
    workloads = _workloads()
    sock_a = str(tmp_path / "a.sock")
    sock_b = str(tmp_path / "b.sock")
    grow = tmp_path / "grow.tsh"
    grow.write_bytes(b"")
    live = tmp_path / "live.fctca"

    # Every feeder anchors to one pinned epoch, so the offline rebuild
    # is deterministic no matter which source's packet lands first.
    epoch = min(
        read_tsh_bytes(data)[0].timestamp for data in workloads.values()
    )

    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(live),
            "--source",
            f"unix:{sock_a}",
            "--source",
            f"unix:{sock_b}",
            "--source",
            f"tail:{grow}",
            "--segment-span",
            str(SEGMENT_SPAN),
            "--epoch",
            str(epoch),
            "--drain-timeout",
            "30",
            "--tail-poll",
            "0.05",
            "-v",
            "--metrics",
        ],
        env={**os.environ, "PYTHONPATH": REPO_SRC},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        _send(sock_a, workloads["unix0"])
        _send(sock_b, workloads["unix1"])
        # The tail file grows in bursts; the final burst lands just
        # before the signal — the drain's last catch-up must read it.
        data = workloads["tail2"]
        third = (len(data) // (3 * 44)) * 44
        with open(grow, "ab") as stream:
            stream.write(data[:third])
        time.sleep(0.3)
        with open(grow, "ab") as stream:
            stream.write(data[third:])

        daemon.send_signal(signal.SIGTERM)
        stdout, stderr = daemon.communicate(timeout=60)
    except Exception:
        daemon.kill()
        daemon.communicate()
        raise

    assert daemon.returncode == 0, stderr
    assert "stop: SIGTERM" in stdout
    assert "drain: clean" in stdout
    for label in ("unix0", "unix1", "tail2"):
        assert label in stdout
    # --metrics routes the run report to stderr with serve.* counters.
    assert "serve.source.unix0.packets" in stderr
    assert "serve.source.tail2.packets" in stderr

    # Group the live archive's segments by their source prefix; each
    # source's sequence must be byte-identical to compressing its own
    # capture offline with the same epoch and bounds.
    by_source: dict[str, list[bytes]] = {}
    total_packets = 0
    with ArchiveReader(str(live)) as reader:
        total_packets = reader.packet_count()
        for index in range(reader.segment_count):
            name = reader.load_segment(index).name
            by_source.setdefault(name.partition("/")[0], []).append(
                reader.read_segment_bytes(index)
            )

    expected_total = sum(len(d) // 44 for d in workloads.values())
    assert total_packets == expected_total
    assert sorted(by_source) == ["tail2", "unix0", "unix1"]
    for label, data in workloads.items():
        offline_segments = _offline(
            tmp_path / f"offline-{label}.fctca", data, label=label, epoch=epoch
        )
        assert by_source[label] == offline_segments, label
