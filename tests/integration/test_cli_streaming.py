"""Integration: the compress --stream / --workers CLI modes."""

import pytest

from repro.cli import main
from repro.core import deserialize_compressed
from repro.trace.trace import Trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.tsh"
    assert main(["generate", str(path), "--duration", "3", "--seed", "9"]) == 0
    return path


@pytest.fixture
def batch_file(tmp_path, trace_file):
    path = tmp_path / "batch.fctc"
    assert main(["compress", str(trace_file), str(path)]) == 0
    return path


class TestStreamMode:
    def test_byte_identical_to_batch(self, tmp_path, trace_file, batch_file):
        streamed = tmp_path / "stream.fctc"
        assert main(
            ["compress", str(trace_file), str(streamed), "--stream"]
        ) == 0
        assert streamed.read_bytes() == batch_file.read_bytes()

    def test_small_chunk_size_still_identical(
        self, tmp_path, trace_file, batch_file
    ):
        streamed = tmp_path / "stream.fctc"
        assert main(
            [
                "compress",
                str(trace_file),
                str(streamed),
                "--stream",
                "--chunk-size",
                "17",
            ]
        ) == 0
        assert streamed.read_bytes() == batch_file.read_bytes()

    def test_chunk_size_implies_stream(self, tmp_path, trace_file, batch_file):
        out = tmp_path / "implied.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--chunk-size", "64"]
        ) == 0
        assert out.read_bytes() == batch_file.read_bytes()

    def test_report_matches_batch(self, tmp_path, trace_file, capsys):
        batch_out = tmp_path / "b.fctc"
        main(["compress", str(trace_file), str(batch_out)])
        batch_report = capsys.readouterr().out
        stream_out = tmp_path / "s.fctc"
        main(["compress", str(trace_file), str(stream_out), "--stream"])
        assert capsys.readouterr().out == batch_report


class TestWorkersMode:
    def test_parallel_output_decompresses(self, tmp_path, trace_file, capsys):
        parallel = tmp_path / "par.fctc"
        assert main(
            ["compress", str(trace_file), str(parallel), "--workers", "2"]
        ) == 0
        assert "ratio" in capsys.readouterr().out

        restored = tmp_path / "restored.tsh"
        assert main(["decompress", str(parallel), str(restored)]) == 0
        assert len(Trace.load_tsh(restored)) == len(Trace.load_tsh(trace_file))

    def test_parallel_flow_count_matches_batch(
        self, tmp_path, trace_file, batch_file
    ):
        parallel = tmp_path / "par.fctc"
        assert main(
            ["compress", str(trace_file), str(parallel), "--workers", "2"]
        ) == 0
        batch = deserialize_compressed(batch_file.read_bytes())
        merged = deserialize_compressed(parallel.read_bytes())
        assert merged.flow_count() == batch.flow_count()
        assert merged.original_packet_count == batch.original_packet_count

    def test_one_worker_is_byte_identical(self, tmp_path, trace_file, batch_file):
        out = tmp_path / "w1.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--workers", "1", "--stream"]
        ) == 0
        assert out.read_bytes() == batch_file.read_bytes()

    def test_stream_with_pool_rejected(self, tmp_path, trace_file, capsys):
        out = tmp_path / "conflict.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--stream", "--workers", "2"]
        ) == 2
        assert "byte-identical" in capsys.readouterr().err
        assert not out.exists()

    def test_zero_workers_rejected(self, tmp_path, trace_file, capsys):
        out = tmp_path / "bad.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--workers", "0"]
        ) == 2
        assert "--workers" in capsys.readouterr().err
        assert not out.exists()

    def test_zero_chunk_size_rejected(self, tmp_path, trace_file, capsys):
        out = tmp_path / "bad.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--stream", "--chunk-size", "0"]
        ) == 2
        assert "--chunk-size" in capsys.readouterr().err
        assert not out.exists()

    def test_inspect_parallel_output(self, tmp_path, trace_file, capsys):
        parallel = tmp_path / "par.fctc"
        main(["compress", str(trace_file), str(parallel), "--workers", "2"])
        capsys.readouterr()
        assert main(["inspect", str(parallel)]) == 0
        assert "time_seq" in capsys.readouterr().out
