"""Uniform CLI exit codes: 0 ok / 1 internal / 2 usage+data errors.

Sweeps every subcommand's failure path (missing inputs, malformed
data, bad flags) plus ``--version`` and the internal-error funnel, so a
regression in any one handler's error handling fails here by name.
"""

import pytest

import repro
from repro import api
from repro.cli import main

MISSING = "/nonexistent/input-that-cannot-exist.tsh"

# Every subcommand, invoked with a missing input file: all must exit 2.
_MISSING_INPUT_INVOCATIONS = {
    "compress": ["compress", MISSING, "out.fctc"],
    "decompress": ["decompress", MISSING, "out.tsh"],
    "replay": ["replay", MISSING, "out.tsh"],
    "stats": ["stats", MISSING],
    "inspect": ["inspect", MISSING],
    "convert": ["convert", MISSING, "out.pcap"],
    "synthesize": ["synthesize", MISSING, "out.tsh"],
    "anonymize": ["anonymize", MISSING, "out.tsh"],
    "compare": ["compare", MISSING, MISSING],
    "archive build": ["archive", "build", "out.fctca", MISSING],
    "archive append": ["archive", "append", MISSING, MISSING],
    "archive info": ["archive", "info", MISSING],
    "query": ["query", MISSING],
}


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("exit-codes") / "t.tsh"
    assert main(["generate", str(path), "--duration", "2", "--seed", "3"]) == 0
    return path


class TestVersion:
    def test_version_exits_zero(self, capsys):
        assert main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_matches_package_metadata(self):
        # Plain-text scan, not tomllib — the CI floor is Python 3.10.
        import re
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        match = re.search(
            r'^version = "([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        assert match is not None
        assert match.group(1) == repro.__version__


class TestUsageErrors:
    def test_no_subcommand_exits_2(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["frobnicate"]) == 2
        capsys.readouterr()

    def test_unknown_flag_exits_2(self, capsys):
        assert main(["generate", "out.tsh", "--bogus"]) == 2
        capsys.readouterr()

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        assert "repro-trace" in capsys.readouterr().out


class TestMissingInputSweep:
    @pytest.mark.parametrize(
        "argv",
        _MISSING_INPUT_INVOCATIONS.values(),
        ids=_MISSING_INPUT_INVOCATIONS.keys(),
    )
    def test_every_subcommand_missing_input_exits_2(
        self, argv, tmp_path, capsys
    ):
        argv = [
            str(tmp_path / arg) if arg.startswith("out.") else arg
            for arg in argv
        ]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:"), err


class TestDataErrors:
    def test_wrong_kind_input_exits_2(self, trace_file, tmp_path, capsys):
        # A window probe over a container is a capability error (only
        # archives carry the footer index) → usage bucket.
        compressed = tmp_path / "t.fctc"
        assert main(["compress", str(trace_file), str(compressed)]) == 0
        capsys.readouterr()
        assert main(["archive", "info", str(compressed), "--windows", "4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_backend_level_exits_2(self, trace_file, tmp_path, capsys):
        code = main(
            [
                "compress", str(trace_file), str(tmp_path / "o.fctc"),
                "--backend", "zlib", "--level", "42",
            ]
        )
        assert code == 2
        capsys.readouterr()

    def test_empty_input_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.tsh"
        empty.write_bytes(b"")
        assert main(["compress", str(empty), str(tmp_path / "o.fctc")]) == 2
        assert "no packets" in capsys.readouterr().err

    def test_decompress_raw_trace_exits_2(self, trace_file, tmp_path, capsys):
        # Pointing decompress at an uncompressed capture must not
        # silently succeed as a byte copy.
        out = tmp_path / "copy.tsh"
        assert main(["decompress", str(trace_file), str(out)]) == 2
        assert "convert" in capsys.readouterr().err
        assert not out.exists()

    def test_replay_container_exits_2(self, trace_file, tmp_path, capsys):
        compressed = tmp_path / "t2.fctc"
        assert main(["compress", str(trace_file), str(compressed)]) == 0
        capsys.readouterr()
        assert main(["replay", str(compressed), str(tmp_path / "o.tsh")]) == 2
        assert "archive" in capsys.readouterr().err

    def test_inspect_addresses_on_archive_exits_2(
        self, trace_file, tmp_path, capsys
    ):
        archive = tmp_path / "t.fctca"
        assert main(["archive", "build", str(archive), str(trace_file)]) == 0
        capsys.readouterr()
        # An archive has no single address dataset: capability error,
        # not an AttributeError crashing through the internal funnel.
        assert main(["inspect", str(archive), "--addresses"]) == 2
        assert "error:" in capsys.readouterr().err


class TestInternalErrors:
    def test_unexpected_exception_exits_1(self, monkeypatch, capsys):
        def boom(*args, **kwargs):
            raise RuntimeError("simulated bug")

        monkeypatch.setattr(api, "generate", boom)
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert main(["generate", "whatever.tsh"]) == 1
        assert "internal error" in capsys.readouterr().err

    def test_debug_env_reraises(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("simulated bug")

        monkeypatch.setattr(api, "generate", boom)
        monkeypatch.setenv("REPRO_DEBUG", "1")
        with pytest.raises(RuntimeError):
            main(["generate", "whatever.tsh"])
