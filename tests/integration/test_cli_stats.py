"""Integration: `repro-trace stats`, `query --stats`, `info --windows`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("clistats") / "t.tsh"
    args = ["generate", str(path), "--duration", "12", "--rate", "30", "--seed", "3"]
    assert main(args) == 0
    return path


@pytest.fixture(scope="module")
def archive_file(tmp_path_factory, trace_file):
    path = tmp_path_factory.mktemp("clistats") / "t.fctca"
    args = ["archive", "build", str(path), str(trace_file), "--segment-span", "3"]
    assert main(args) == 0
    return path


class TestStatsCommand:
    def test_raw_trace_keeps_legacy_output(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "packets" in out
        assert "matrix stats" not in out

    def test_raw_trace_with_window_builds_matrices(self, trace_file, capsys):
        assert main(["stats", str(trace_file), "--window", "4"]) == 0
        out = capsys.readouterr().out
        assert "matrix stats (index path" in out
        assert "window 4 s" in out

    def test_archive_defaults_to_matrix_report(self, archive_file, capsys):
        assert main(["stats", str(archive_file)]) == 0
        out = capsys.readouterr().out
        assert "matrix stats" in out

    def test_json_document_schema(self, archive_file, capsys):
        assert main(["stats", str(archive_file), "--window", "3", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.analysis/matrix-report/v1"
        assert document["windows"]

    def test_out_writes_the_report(self, archive_file, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        args = ["stats", str(archive_file), "--window", "3", "--out", str(out_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert json.loads(out_path.read_text())["flows"] > 0

    def test_index_and_decode_methods_agree(self, archive_file, capsys):
        """The CLI-level differential: byte-identical window tables."""
        assert main(["stats", str(archive_file), "--window", "3", "--json"]) == 0
        by_index = json.loads(capsys.readouterr().out)
        args = ["stats", str(archive_file), "--window", "3", "--json",
                "--method", "decode"]
        assert main(args) == 0
        by_decode = json.loads(capsys.readouterr().out)
        assert by_index["windows"] == by_decode["windows"]
        assert by_index["method"] == "index"
        assert by_decode["method"] == "decode"

    def test_bounded_range_prunes_segments(self, archive_file, capsys):
        args = ["stats", str(archive_file), "--window", "3",
                "--since", "3", "--until", "6", "--json"]
        assert main(args) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["segments_pruned"] > 0
        assert document["segments_decoded"] < document["segments_total"]

    def test_anonymize_key_masks_addresses(self, archive_file, capsys):
        assert main(["stats", str(archive_file), "--window", "3", "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        args = ["stats", str(archive_file), "--window", "3", "--json",
                "--anonymize-key", "secret"]
        assert main(args) == 0
        masked = json.loads(capsys.readouterr().out)
        assert masked["anonymized"] is True
        assert masked["flows"] == plain["flows"]
        assert (
            masked["windows"][0]["top_links_packets"]
            != plain["windows"][0]["top_links_packets"]
        )

    def test_json_on_raw_trace_without_window_exits_2(self, trace_file, caplog):
        assert main(["stats", str(trace_file), "--json"]) == 2
        assert "--window" in "\n".join(r.getMessage() for r in caplog.records)


class TestArchiveInfoWindows:
    def test_probe_table_appended(self, archive_file, capsys):
        assert main(["archive", "info", str(archive_file), "--windows", "4"]) == 0
        out = capsys.readouterr().out
        assert "window probe" in out
        assert "flows<=" in out
        rows = [
            line for line in out.splitlines()
            if line.strip() and line.split()[0].isdigit()
        ]
        assert len(rows) >= 4

    def test_without_flag_no_probe(self, archive_file, capsys):
        assert main(["archive", "info", str(archive_file)]) == 0
        assert "window probe" not in capsys.readouterr().out


class TestQueryStats:
    def test_aggregates_matching_flows(self, archive_file, capsys):
        args = ["query", str(archive_file), "--since", "3", "--until", "6",
                "--stats"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "matched flows" in out
        assert "max fan-out/in" in out
        assert "segments decoded" in out

    def test_stats_rejects_output_and_limit(self, archive_file, caplog):
        args = ["query", str(archive_file), "--stats", "--limit", "5"]
        assert main(args) == 2
        message = "\n".join(r.getMessage() for r in caplog.records)
        assert "--stats" in message

    def test_no_matches_prints_empty_note(self, archive_file, capsys):
        args = ["query", str(archive_file), "--since", "9000", "--stats"]
        assert main(args) == 0
        assert "no matching flows" in capsys.readouterr().out
