"""Integration: the ``--metrics`` / ``--metrics-out`` / ``-v`` CLI surface."""

import json
import logging

import pytest

from repro.cli import main
from repro.trace.trace import Trace
from repro.trace.tsh import TSH_RECORD_BYTES


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.tsh"
    assert main(["generate", str(path), "--duration", "4", "--seed", "5"]) == 0
    return path


class TestMetricsOut:
    def test_report_counters_match_ground_truth(
        self, tmp_path, trace_file, capsys
    ):
        out = tmp_path / "t.fctc"
        report_path = tmp_path / "run.json"
        assert main(
            ["compress", str(trace_file), str(out),
             "--metrics-out", str(report_path)]
        ) == 0
        capsys.readouterr()
        document = json.loads(report_path.read_text())
        assert document["schema"] == "repro.obs/run-report/v1"
        assert document["command"] == "compress"
        packets = len(Trace.load_tsh(trace_file))
        counters = document["counters"]
        assert counters["compress.packets"] == packets
        assert counters["trace.read.records"] == packets
        assert counters["trace.read.bytes"] == packets * TSH_RECORD_BYTES
        assert counters["codec.containers"] == 1
        assert counters["stream.chunks"] >= 1

    def test_identical_semantics_across_engines(self, tmp_path, trace_file):
        semantic = (
            "compress.packets",
            "compress.flows",
            "compress.flows.short",
            "compress.flows.long",
            "compress.template.hits",
            "compress.template.misses",
            "trace.read.records",
            "trace.read.bytes",
        )
        documents = {}
        for engine in ("scalar", "columnar"):
            report_path = tmp_path / f"{engine}.json"
            assert main(
                ["compress", str(trace_file), str(tmp_path / f"{engine}.fctc"),
                 "--engine", engine, "--metrics-out", str(report_path)]
            ) == 0
            documents[engine] = json.loads(report_path.read_text())["counters"]
        for name in semantic:
            assert documents["scalar"][name] == documents["columnar"][name], name

    def test_metrics_flag_prints_stderr_table(self, tmp_path, trace_file, capsys):
        assert main(
            ["compress", str(trace_file), str(tmp_path / "t.fctc"), "--metrics"]
        ) == 0
        captured = capsys.readouterr()
        assert "-- metrics: compress" in captured.err
        assert "compress.packets" in captured.err
        # The regular report still goes to stdout, untouched.
        assert "ratio" in captured.out

    def test_archive_subcommand_records_dotted_command(
        self, tmp_path, trace_file, capsys
    ):
        report_path = tmp_path / "run.json"
        assert main(
            ["archive", "build", str(tmp_path / "a.fctca"), str(trace_file),
             "--metrics-out", str(report_path)]
        ) == 0
        capsys.readouterr()
        document = json.loads(report_path.read_text())
        assert document["command"] == "archive.build"
        assert document["counters"]["archive.segments_rotated"] >= 0

    def test_query_metrics_cover_pruning(self, tmp_path, trace_file, capsys):
        archive = tmp_path / "a.fctca"
        report_path = tmp_path / "run.json"
        assert main(
            ["archive", "build", str(archive), str(trace_file),
             "--segment-span", "1"]
        ) == 0
        assert main(
            ["query", str(archive), "--since", "0.5", "--until", "1.5",
             "--metrics-out", str(report_path)]
        ) == 0
        capsys.readouterr()
        counters = json.loads(report_path.read_text())["counters"]
        assert counters["query.runs"] == 1
        assert counters["query.segments_pruned"] >= 1
        assert (
            counters["query.segments_decoded"] < counters["query.segments_pruned"]
            + counters["query.segments_decoded"]
        )


class TestVerbosity:
    def test_default_hides_info(self, tmp_path, trace_file, capsys):
        assert main(
            ["compress", str(trace_file), str(tmp_path / "t.fctc")]
        ) == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_verbose_levels(self):
        assert main(["stats", "--help"]) == 0  # parser sanity
        for flags, level in (
            (["-q"], logging.ERROR),
            ([], logging.WARNING),
            (["-v"], logging.INFO),
            (["-vv"], logging.DEBUG),
        ):
            main(["stats", *flags, "/nonexistent"])
            assert logging.getLogger("repro").level == level

    def test_debug_logs_rotation_decisions(self, tmp_path, trace_file, capsys):
        archive = tmp_path / "a.fctca"
        assert main(
            ["archive", "build", str(archive), str(trace_file),
             "--segment-span", "1", "-vv"]
        ) == 0
        captured = capsys.readouterr()
        assert "rotated segment" in captured.err
        assert "sealed archive" in captured.err

    def test_quiet_still_reports_errors(self, capsys):
        assert main(["stats", "-q", "/nonexistent"]) == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:")
        assert len(err.splitlines()) == 1
