"""Integration: the streaming `decompress` and `replay` CLI commands."""

import pytest

from repro.cli import main
from repro.core import deserialize_compressed
from repro.core.decompressor import decompress_trace
from repro.trace.trace import Trace
from repro.trace.tsh import write_tsh_bytes


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.tsh"
    assert main(["generate", str(path), "--duration", "4", "--seed", "9"]) == 0
    return path


@pytest.fixture
def archive_file(tmp_path, trace_file):
    path = tmp_path / "t.fctca"
    assert (
        main(
            [
                "archive", "build", str(path), str(trace_file),
                "--segment-span", "1",
            ]
        )
        == 0
    )
    return path


class TestStreamingDecompress:
    def test_output_matches_batch_decompressor(self, tmp_path, trace_file):
        compressed = tmp_path / "t.fctc"
        assert main(["compress", str(trace_file), str(compressed)]) == 0
        restored = tmp_path / "restored.tsh"
        assert main(["decompress", str(compressed), str(restored)]) == 0
        batch = decompress_trace(deserialize_compressed(compressed.read_bytes()))
        assert restored.read_bytes() == write_tsh_bytes(batch.packets)

    def test_pcap_output_by_suffix(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        main(["compress", str(trace_file), str(compressed)])
        restored = tmp_path / "restored.pcap"
        assert main(["decompress", str(compressed), str(restored)]) == 0
        assert "packets" in capsys.readouterr().out
        assert len(list(Trace.load_pcap(restored))) > 0


class TestReplay:
    def test_full_replay_writes_every_flow(self, tmp_path, archive_file, capsys):
        out = tmp_path / "replayed.tsh"
        assert main(["replay", str(archive_file), str(out)]) == 0
        output = capsys.readouterr().out
        assert "wrote" in output
        replayed = Trace.load_tsh(out)
        assert len(replayed) > 100
        assert replayed.is_time_ordered()

    def test_parallel_replay_is_byte_identical(self, tmp_path, archive_file):
        sequential = tmp_path / "seq.tsh"
        parallel = tmp_path / "par.tsh"
        assert main(["replay", str(archive_file), str(sequential)]) == 0
        assert (
            main(["replay", str(archive_file), str(parallel), "--workers", "2"])
            == 0
        )
        assert sequential.read_bytes() == parallel.read_bytes()

    def test_filtered_replay_prints_stats(self, tmp_path, archive_file, capsys):
        out = tmp_path / "window.tsh"
        assert (
            main(
                [
                    "replay", str(archive_file), str(out),
                    "--since", "1", "--until", "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "segments decoded" in output
        assert "flows matched" in output
        full = tmp_path / "full.tsh"
        main(["replay", str(archive_file), str(full)])
        assert 0 < out.stat().st_size < full.stat().st_size

    def test_limit_caps_flows(self, tmp_path, archive_file, capsys):
        out = tmp_path / "limited.tsh"
        assert main(["replay", str(archive_file), str(out), "--limit", "2"]) == 0
        assert "flows matched    : 2" in capsys.readouterr().out

    def test_workers_with_filters_rejected(self, tmp_path, archive_file, capsys):
        out = tmp_path / "x.tsh"
        assert (
            main(
                [
                    "replay", str(archive_file), str(out),
                    "--since", "1", "--workers", "2",
                ]
            )
            == 2
        )
        assert "error" in capsys.readouterr().err

    def test_bad_worker_count_rejected(self, tmp_path, archive_file, capsys):
        out = tmp_path / "x.tsh"
        assert (
            main(["replay", str(archive_file), str(out), "--workers", "0"]) == 2
        )
        assert "--workers" in capsys.readouterr().err

    def test_missing_archive_exits_2(self, tmp_path, capsys):
        assert (
            main(["replay", str(tmp_path / "nope.fctca"), str(tmp_path / "o.tsh")])
            == 2
        )
        assert "no such file" in capsys.readouterr().err
