"""Integration: the full compress/decompress pipeline on generated traffic.

These are the library-level versions of the paper's claims: the ratio
lands near 3%, the semantic properties survive, and the whole thing
composes through the on-disk formats.
"""

import pytest

from repro.core import compress_trace, decompress_trace, roundtrip
from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.flows.assembler import assemble_flows
from repro.flows.characterize import characterize_flow
from repro.flows.distance import similarity_threshold, vector_distance
from repro.trace.stats import compute_statistics
from repro.trace.trace import Trace


class TestEndToEnd:
    def test_packet_count_preserved(self, small_web_trace):
        decompressed, report = roundtrip(small_web_trace)
        assert len(decompressed) == len(small_web_trace)

    def test_ratio_in_paper_band(self, small_web_trace):
        _, report = roundtrip(small_web_trace)
        assert 0.02 < report.ratio < 0.06

    def test_flow_count_preserved(self, small_web_trace):
        decompressed, _ = roundtrip(small_web_trace)
        original = compute_statistics(small_web_trace)
        restored = compute_statistics(decompressed)
        assert restored.flow_count == original.flow_count

    def test_flow_length_distribution_close(self, small_web_trace):
        decompressed, _ = roundtrip(small_web_trace)
        original = compute_statistics(small_web_trace).length_distribution
        restored = compute_statistics(decompressed).length_distribution
        # Clustering may merge similar-but-not-identical flows, shifting a
        # few flows between adjacent lengths; the aggregate shape holds.
        assert restored.total_packets() == original.total_packets()
        assert restored.mean_length() == pytest.approx(
            original.mean_length(), rel=0.02
        )

    def test_duration_roughly_preserved(self, small_web_trace):
        decompressed, _ = roundtrip(small_web_trace)
        # Flow start times are exact (time-seq); within-flow timing is
        # modelled, so total duration may stretch, bounded by the RTT
        # model (factor ~3 tolerance).
        assert decompressed.duration() < 3 * small_web_trace.duration() + 1.0

    def test_every_short_flow_within_dmax_of_template(self, small_web_trace):
        """The paper's clustering bound: every short flow's vector is
        within d_max of the template that represents it — by construction,
        but this verifies the pipeline end to end."""
        compressed = compress_trace(small_web_trace)
        decompressed = decompress_trace(compressed)
        original_vectors = {}
        for flow in assemble_flows(small_web_trace.packets):
            vector = characterize_flow(flow)
            original_vectors.setdefault(len(vector), []).append(vector)
        for flow in assemble_flows(decompressed.packets):
            if len(flow) > 50:
                continue
            vector = characterize_flow(flow)
            candidates = original_vectors.get(len(vector), [])
            threshold = similarity_threshold(len(vector))
            assert any(
                vector_distance(vector, candidate) < max(threshold, 1)
                for candidate in candidates
            ), f"decompressed vector {vector} has no nearby original"

    def test_serialized_roundtrip_identical_datasets(self, small_web_trace):
        compressed = compress_trace(small_web_trace)
        restored = deserialize_compressed(serialize_compressed(compressed))
        decompressed_a = decompress_trace(compressed)
        decompressed_b = decompress_trace(restored)
        assert len(decompressed_a) == len(decompressed_b)
        assert [p.dst_ip for p in decompressed_a] == [
            p.dst_ip for p in decompressed_b
        ]


class TestDoubleCompression:
    def test_recompressing_decompressed_is_stable(self, small_web_trace):
        """Compressing the decompressed trace should find (at least as
        much) structure: template counts shrink or hold, never explode."""
        first = compress_trace(small_web_trace)
        decompressed = decompress_trace(first)
        second = compress_trace(decompressed)
        assert second.flow_count() == first.flow_count()
        assert (
            len(second.short_templates) <= len(first.short_templates) + 2
        )

    def test_second_roundtrip_ratio_not_worse(self, small_web_trace):
        decompressed, first_report = roundtrip(small_web_trace)
        _, second_report = roundtrip(decompressed)
        assert second_report.ratio <= first_report.ratio * 1.2
