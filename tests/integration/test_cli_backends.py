"""Integration: the ``--backend`` / ``--level`` CLI surface."""

import pytest

from repro.cli import main
from repro.trace.trace import Trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "t.tsh"
    assert main(["generate", str(path), "--duration", "4", "--seed", "5"]) == 0
    return path


class TestCompressBackend:
    def test_zlib_shrinks_the_container(self, tmp_path, trace_file, capsys):
        raw = tmp_path / "raw.fctc"
        zl = tmp_path / "zl.fctc"
        assert main(["compress", str(trace_file), str(raw)]) == 0
        assert main(
            ["compress", str(trace_file), str(zl), "--backend", "zlib"]
        ) == 0
        assert zl.stat().st_size < raw.stat().st_size
        assert "backends" in capsys.readouterr().out

    def test_backend_output_decompresses(self, tmp_path, trace_file):
        compressed = tmp_path / "t.fctc"
        restored = tmp_path / "t2.tsh"
        assert main(
            ["compress", str(trace_file), str(compressed), "--backend", "lzma"]
        ) == 0
        assert main(["decompress", str(compressed), str(restored)]) == 0
        assert len(Trace.load_tsh(restored)) == len(Trace.load_tsh(trace_file))

    def test_auto_reports_choices(self, tmp_path, trace_file, capsys):
        out = tmp_path / "auto.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--backend", "auto"]
        ) == 0
        output = capsys.readouterr().out
        assert "backends        :" in output
        assert "time_seq=" in output

    def test_stream_and_batch_agree_per_backend(self, tmp_path, trace_file):
        batch = tmp_path / "b.fctc"
        stream = tmp_path / "s.fctc"
        for backend in ("zlib", "auto"):
            assert main(
                ["compress", str(trace_file), str(batch), "--backend", backend]
            ) == 0
            assert main(
                ["compress", str(trace_file), str(stream), "--stream",
                 "--backend", backend]
            ) == 0
            assert batch.read_bytes() == stream.read_bytes()

    def test_level_without_backend_is_advisory(self, tmp_path, trace_file):
        # No --backend means the raw default; --level applies nowhere
        # and is ignored rather than rejected (only an explicitly named
        # backend is strict about an unusable level).
        out = tmp_path / "x.fctc"
        plain = tmp_path / "p.fctc"
        assert main(["compress", str(trace_file), str(out), "--level", "6"]) == 0
        assert main(["compress", str(trace_file), str(plain)]) == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_auto_with_level_outside_bz2_range(self, tmp_path, trace_file):
        out = tmp_path / "x.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--backend", "auto",
             "--level", "0"]
        ) == 0

    def test_level_on_raw_exits_2(self, tmp_path, trace_file, capsys):
        out = tmp_path / "x.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--backend", "raw",
             "--level", "3"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_out_of_range_level_exits_2(self, tmp_path, trace_file, capsys):
        out = tmp_path / "x.fctc"
        assert main(
            ["compress", str(trace_file), str(out), "--backend", "zlib",
             "--level", "99"]
        ) == 2
        assert "outside" in capsys.readouterr().err

    def test_inspect_shows_backends(self, tmp_path, trace_file, capsys):
        out = tmp_path / "t.fctc"
        main(["compress", str(trace_file), str(out), "--backend", "bz2"])
        capsys.readouterr()
        assert main(["inspect", str(out)]) == 0
        output = capsys.readouterr().out
        assert "format               : v2" in output
        assert "bz2" in output
        assert "stored sections:" in output


class TestArchiveBackend:
    def test_build_info_and_query_roundtrip(self, tmp_path, trace_file, capsys):
        archive = tmp_path / "a.fctca"
        assert main(
            ["archive", "build", str(archive), str(trace_file),
             "--segment-span", "1", "--backend", "zlib"]
        ) == 0
        capsys.readouterr()
        assert main(["archive", "info", str(archive)]) == 0
        output = capsys.readouterr().out
        assert "format               : v2" in output
        assert "zlib" in output

        window = tmp_path / "w.fctca"
        assert main(
            ["query", str(archive), "--until", "3", "--output", str(window)]
        ) == 0
        capsys.readouterr()
        assert main(["archive", "info", str(window)]) == 0
        assert "zlib" in capsys.readouterr().out  # source backends preserved

    def test_query_backend_without_output_exits_2(
        self, tmp_path, trace_file, capsys
    ):
        archive = tmp_path / "a.fctca"
        assert main(
            ["archive", "build", str(archive), str(trace_file),
             "--segment-span", "1"]
        ) == 0
        assert main(["query", str(archive), "--backend", "zlib"]) == 2
        assert "--output" in capsys.readouterr().err

    def test_append_with_backend(self, tmp_path, trace_file, capsys):
        archive = tmp_path / "a.fctca"
        assert main(
            ["archive", "build", str(archive), str(trace_file),
             "--segment-span", "1"]
        ) == 0
        assert main(
            ["archive", "append", str(archive), str(trace_file),
             "--segment-span", "1", "--backend", "lzma"]
        ) == 0
        capsys.readouterr()
        assert main(["archive", "info", str(archive)]) == 0
        output = capsys.readouterr().out
        assert "raw" in output and "lzma" in output

    def test_replay_backend_archive(self, tmp_path, trace_file):
        archive = tmp_path / "a.fctca"
        out = tmp_path / "r.tsh"
        assert main(
            ["archive", "build", str(archive), str(trace_file),
             "--segment-span", "1", "--backend", "auto"]
        ) == 0
        assert main(["replay", str(archive), str(out)]) == 0
        assert out.stat().st_size > 0
