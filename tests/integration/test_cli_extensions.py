"""Integration: the synthesize/anonymize/compare CLI subcommands."""

import pytest

from repro.cli import main
from repro.trace.trace import Trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "src.tsh"
    assert main(["generate", str(path), "--duration", "4", "--seed", "21"]) == 0
    return path


class TestSynthesize:
    def test_scale_two(self, tmp_path, trace_file, capsys):
        out = tmp_path / "double.tsh"
        assert main(
            ["synthesize", str(trace_file), str(out), "--scale", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "templates" in output
        source = Trace.load_tsh(trace_file)
        synthetic = Trace.load_tsh(out)
        assert len(synthetic) > 1.5 * len(source)

    def test_absolute_flows(self, tmp_path, trace_file):
        out = tmp_path / "fixed.tsh"
        assert main(
            ["synthesize", str(trace_file), str(out), "--flows", "10"]
        ) == 0
        assert len(Trace.load_tsh(out)) > 10  # >= 1 packet per flow


class TestAnonymize:
    def test_addresses_change_structure_survives(self, tmp_path, trace_file):
        out = tmp_path / "anon.tsh"
        assert main(["anonymize", str(trace_file), str(out)]) == 0
        original = Trace.load_tsh(trace_file)
        anonymized = Trace.load_tsh(out)
        assert len(anonymized) == len(original)
        assert {p.dst_ip for p in original}.isdisjoint(
            {p.dst_ip for p in anonymized}
        )

    def test_key_changes_output(self, tmp_path, trace_file):
        out_a = tmp_path / "a.tsh"
        out_b = tmp_path / "b.tsh"
        main(["anonymize", str(trace_file), str(out_a), "--key", "k1"])
        main(["anonymize", str(trace_file), str(out_b), "--key", "k2"])
        a = Trace.load_tsh(out_a)
        b = Trace.load_tsh(out_b)
        assert [p.dst_ip for p in a] != [p.dst_ip for p in b]


class TestCompare:
    def test_roundtrip_passes_compare(self, tmp_path, trace_file, capsys):
        compressed = tmp_path / "t.fctc"
        restored = tmp_path / "restored.tsh"
        main(["compress", str(trace_file), str(compressed)])
        main(["decompress", str(compressed), str(restored)])
        capsys.readouterr()
        assert main(["compare", str(trace_file), str(restored)]) == 0
        output = capsys.readouterr().out
        assert "statistically similar: True" in output

    def test_self_compare_passes(self, trace_file, capsys):
        assert main(["compare", str(trace_file), str(trace_file)]) == 0
