"""Tests for the experiment runner CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_known_experiments_registered(self):
        expected = {
            "figure1", "flowstats", "ratios", "figure2", "figure3", "apps",
            "ablation_weights", "ablation_threshold", "ablation_cutoff",
            "ablation_cache", "p2p", "anonymization", "generator_study",
            "semantics",
        }
        assert expected == set(EXPERIMENTS)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["flowstats"])
        assert args.names == ["flowstats"]
        assert not args.quick
        assert args.seed == 1


class TestMain:
    def test_unknown_experiment(self, capsys):
        assert main(["nonsense"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_run_single(self, capsys, tmp_path):
        code = main(["flowstats", "--quick", "--out", str(tmp_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "flowstats" in output
        assert (tmp_path / "flowstats.txt").exists()

    def test_quick_run_ratios(self, capsys):
        assert main(["ratios", "--quick"]) == 0
        assert "equations 5-8" in capsys.readouterr().out
