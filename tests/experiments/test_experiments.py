"""Quick-mode runs of every experiment.

These verify the harness machinery (structured rows, report text, pass
flags) on a small workload; the full-scale reproduction numbers live in
EXPERIMENTS.md and the benchmark suite.
"""

import pytest

from repro.experiments import (
    ablation_cutoff,
    ablation_threshold,
    ablation_weights,
    figure1,
    flowstats,
    ratios,
)
from repro.experiments.common import ExperimentConfig, standard_trace, standard_traces


@pytest.fixture(scope="module")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig().quick()


class TestCommon:
    def test_quick_scales_workload(self):
        config = ExperimentConfig().quick()
        assert config.duration < ExperimentConfig().duration
        assert config.tolerance_scale > 1.0

    def test_standard_trace_deterministic(self, quick_config):
        a = standard_trace(quick_config)
        b = standard_trace(quick_config)
        assert len(a) == len(b)

    def test_four_traces_same_packet_count(self, quick_config):
        quartet = standard_traces(quick_config)
        assert len(quartet.decompressed) == len(quartet.original)
        assert len(quartet.random) == len(quartet.original)
        assert len(quartet.fracexp) == len(quartet.original)

    def test_named_order(self, quick_config):
        quartet = standard_traces(quick_config)
        labels = [label for label, _ in quartet.named()]
        assert labels == [
            "RedIRIS (original)", "Decomp", "RedIRIS random", "fracexp",
        ]


class TestFlowstats:
    def test_runs_and_passes(self, quick_config):
        result = flowstats.run(quick_config)
        assert result.name == "flowstats"
        assert len(result.rows) == 3
        assert result.passed

    def test_row_dicts(self, quick_config):
        result = flowstats.run(quick_config)
        row = result.row_dicts()[0]
        assert row["statistic"] == "flows <= 50 packets"


class TestRatios:
    def test_analytic_models_always_reproduce(self, quick_config):
        result = ratios.run(quick_config)
        assert any("reproduce paper: True" in note for note in result.notes)

    def test_table_has_four_methods(self, quick_config):
        result = ratios.run(quick_config)
        methods = [row[0] for row in result.rows]
        assert methods == ["gzip", "van-jacobson", "peuhkuri", "proposed"]


class TestFigure1:
    def test_sizes_monotone_in_time(self, quick_config):
        result = figure1.run(quick_config, sample_count=4)
        originals = [float(row[1]) for row in result.rows]
        assert originals == sorted(originals)

    def test_proposed_smallest(self, quick_config):
        result = figure1.run(quick_config, sample_count=4)
        final = result.rows[-1]
        assert float(final[5]) < float(final[2])  # proposed < gzip
        assert float(final[5]) < float(final[1])  # proposed < original


class TestAblations:
    def test_weights(self, quick_config):
        result = ablation_weights.run(quick_config)
        assert result.passed

    def test_threshold_monotone(self, quick_config):
        result = ablation_threshold.run(quick_config)
        templates = [row[1] for row in result.rows]
        assert templates == sorted(templates, reverse=True)

    def test_cutoff(self, quick_config):
        result = ablation_cutoff.run(quick_config)
        assert result.passed
        cutoffs = [row[0] for row in result.rows]
        assert 50 in cutoffs
