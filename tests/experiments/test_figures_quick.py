"""Quick-mode runs of the figure 2/3 and apps experiments.

These take ~15 s each in quick mode (four traces through the Route
benchmark), so they live in their own module; they verify the full
experiment machinery end to end, not the full-scale numbers.
"""

import pytest

from repro.experiments import apps, figure2, figure3
from repro.experiments.common import ExperimentConfig, standard_traces


@pytest.fixture(scope="module")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig().quick()


class TestFigure2Quick:
    def test_runs_and_passes(self, quick_config):
        result = figure2.run(quick_config)
        assert result.passed

    def test_four_trace_columns(self, quick_config):
        result = figure2.run(quick_config)
        assert result.headers == [
            "#mem_accs",
            "RedIRIS (original)",
            "Decomp",
            "RedIRIS random",
            "fracexp",
        ]

    def test_cumulative_shares_monotone(self, quick_config):
        result = figure2.run(quick_config)
        for column in range(1, 5):
            shares = [float(row[column]) for row in result.rows]
            assert shares == sorted(shares)
            assert shares[-1] == pytest.approx(100.0)


class TestFigure3Quick:
    def test_runs_and_passes(self, quick_config):
        result = figure3.run(quick_config)
        assert result.passed

    def test_bucket_shares_sum_to_100(self, quick_config):
        result = figure3.run(quick_config)
        for row in result.rows:
            shares = [float(str(cell).rstrip("%")) for cell in row[1:5]]
            assert sum(shares) == pytest.approx(100.0, abs=0.5)


class TestAppsQuick:
    def test_runs_and_passes(self, quick_config):
        result = apps.run(quick_config)
        assert result.passed
        assert [row[0] for row in result.rows] == ["route", "nat", "rtr"]
