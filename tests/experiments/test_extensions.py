"""Quick-mode runs of the extension experiments (E7-E9)."""

import pytest

from repro.experiments import anonymization, generator_study, p2p
from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="module")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig().quick()


class TestP2P:
    def test_runs_and_passes(self, quick_config):
        result = p2p.run(quick_config)
        assert result.passed
        workloads = [row[0] for row in result.rows]
        assert workloads == ["web", "p2p"]

    def test_p2p_short_fraction_lower(self, quick_config):
        result = p2p.run(quick_config)
        rows = result.row_dicts()
        web_short = float(rows[0]["short_flows"].rstrip("%"))
        p2p_short = float(rows[1]["short_flows"].rstrip("%"))
        assert p2p_short < web_short


class TestAnonymization:
    def test_runs_and_passes(self, quick_config):
        result = anonymization.run(quick_config)
        assert result.passed

    def test_prefix_preserving_closest(self, quick_config):
        result = anonymization.run(quick_config)
        rows = result.row_dicts()
        ks = {row["trace"]: float(row["KS_vs_original"]) for row in rows}
        assert ks["prefix-preserving"] < ks["naive random"]


class TestGeneratorStudy:
    def test_runs_and_passes(self, quick_config):
        result = generator_study.run(quick_config)
        assert result.passed

    def test_scaled_flow_count(self, quick_config):
        result = generator_study.run(quick_config)
        rows = result.row_dicts()
        flows = next(r for r in rows if r["statistic"] == "flows")
        assert int(flows["synthetic (2x flows)"]) == pytest.approx(
            2 * int(flows["original"]), rel=0.05
        )
