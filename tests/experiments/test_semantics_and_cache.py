"""Quick-mode runs of the semantics scorecard and the cache ablation."""

import pytest

from repro.experiments import ablation_cache, semantics
from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="module")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig().quick()


class TestSemantics:
    def test_runs_and_passes(self, quick_config):
        result = semantics.run(quick_config)
        assert result.passed

    def test_three_properties_scored(self, quick_config):
        result = semantics.run(quick_config)
        properties = [row[0] for row in result.rows]
        assert properties == [
            "flag trigram similarity",
            "dst locality (LRU depth<64)",
            "mean neighbor prefix bits",
        ]

    def test_flag_similarity_high(self, quick_config):
        result = semantics.run(quick_config)
        similarity = float(result.rows[0][2])
        assert similarity > 0.9


class TestCacheAblation:
    def test_runs_and_passes(self, quick_config):
        result = ablation_cache.run(quick_config)
        assert result.passed

    def test_all_geometries_reported(self, quick_config):
        result = ablation_cache.run(quick_config)
        assert len(result.rows) == len(ablation_cache.GEOMETRIES)

    def test_rows_carry_miss_rates(self, quick_config):
        result = ablation_cache.run(quick_config)
        for row in result.rows:
            miss = float(str(row[1]).rstrip("%"))
            assert 0.0 <= miss <= 100.0
