"""Tests for the instrumented radix tree."""

import pytest

from repro.memsim.access import AccessRecorder
from repro.net.ip import IPv4Prefix, parse_ipv4
from repro.routing.radix import RadixTree


def prefix(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


class TestLongestPrefixMatch:
    def test_exact_prefix(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/8"), 1)
        assert tree.lookup(parse_ipv4("10.1.2.3")) == 1

    def test_no_route(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/8"), 1)
        assert tree.lookup(parse_ipv4("11.0.0.1")) is None

    def test_longest_wins(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/8"), 1)
        tree.insert(prefix("10.1.0.0/16"), 2)
        tree.insert(prefix("10.1.2.0/24"), 3)
        assert tree.lookup(parse_ipv4("10.1.2.3")) == 3
        assert tree.lookup(parse_ipv4("10.1.9.9")) == 2
        assert tree.lookup(parse_ipv4("10.9.9.9")) == 1

    def test_default_route(self):
        tree = RadixTree()
        tree.insert(prefix("0.0.0.0/0"), 99)
        assert tree.lookup(parse_ipv4("200.1.2.3")) == 99

    def test_host_route(self):
        tree = RadixTree()
        tree.insert(prefix("192.168.0.80/32"), 7)
        assert tree.lookup(parse_ipv4("192.168.0.80")) == 7
        assert tree.lookup(parse_ipv4("192.168.0.81")) is None

    def test_replace_existing(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/8"), 1)
        tree.insert(prefix("10.0.0.0/8"), 5)
        assert tree.lookup(parse_ipv4("10.0.0.1")) == 5
        assert tree.entry_count == 1

    def test_sibling_prefixes(self):
        tree = RadixTree()
        tree.insert(prefix("128.0.0.0/1"), 1)
        tree.insert(prefix("0.0.0.0/1"), 2)
        assert tree.lookup(parse_ipv4("200.0.0.1")) == 1
        assert tree.lookup(parse_ipv4("100.0.0.1")) == 2


class TestIntrospection:
    def test_entries_roundtrip(self):
        tree = RadixTree()
        routes = [
            (prefix("10.0.0.0/8"), 1),
            (prefix("10.1.0.0/16"), 2),
            (prefix("192.168.0.0/24"), 3),
            (prefix("0.0.0.0/0"), 0),
        ]
        for p, hop in routes:
            tree.insert(p, hop)
        assert sorted(tree.entries(), key=lambda e: (e[0].length, e[0].network)) == sorted(
            routes, key=lambda e: (e[0].length, e[0].network)
        )

    def test_max_depth(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/24"), 1)
        assert tree.max_depth() == 24

    def test_lookup_depth(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/24"), 1)
        # Matching address walks all 24 levels + root.
        assert tree.lookup_depth(parse_ipv4("10.0.0.5")) == 25
        # A first-bit mismatch (128.x vs 10.x) falls off at the root.
        assert tree.lookup_depth(parse_ipv4("128.0.0.1")) == 1

    def test_lookup_count(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/8"), 1)
        tree.lookup(parse_ipv4("10.0.0.1"))
        tree.lookup(parse_ipv4("10.0.0.2"))
        assert tree.lookup_count == 2


class TestInstrumentation:
    def test_lookup_records_accesses(self):
        recorder = AccessRecorder()
        tree = RadixTree(recorder=recorder)
        tree.insert(prefix("10.0.0.0/8"), 1)
        recorder.begin_packet()
        tree.lookup(parse_ipv4("10.0.0.1"))
        recorder.end_packet()
        counts = recorder.accesses_per_packet()
        assert counts[0] > 0

    def test_deeper_match_costs_more(self):
        def cost_of(prefix_text, address_text):
            recorder = AccessRecorder()
            tree = RadixTree(recorder=recorder)
            tree.insert(prefix(prefix_text), 1)
            tree.recorder = recorder
            recorder.begin_packet()
            tree.lookup(parse_ipv4(address_text))
            recorder.end_packet()
            return recorder.accesses_per_packet()[0]

        assert cost_of("10.0.0.0/24", "10.0.0.1") > cost_of("10.0.0.0/8", "10.0.0.1")

    def test_backtrack_costs_accesses(self):
        # An address that walks deep but only matches a shallow entry
        # pays the walk back up.
        recorder = AccessRecorder()
        tree = RadixTree(recorder=recorder)
        tree.insert(prefix("0.0.0.0/0"), 0)
        tree.insert(prefix("10.0.0.0/24"), 1)  # deep path, no mid entries

        recorder.begin_packet()
        # Shares 23 bits with the /24 path, then diverges: falls off deep,
        # backtracks to the default route.
        assert tree.lookup(parse_ipv4("10.0.1.1")) == 0
        recorder.end_packet()
        deep_miss = recorder.accesses_per_packet()[0]

        recorder.begin_packet()
        # First bit diverges: immediate fall-off, backtrack to root only.
        assert tree.lookup(parse_ipv4("128.0.0.1")) == 0
        recorder.end_packet()
        shallow_miss = recorder.accesses_per_packet()[-1]

        assert deep_miss > shallow_miss

    def test_nodes_live_on_heap(self):
        tree = RadixTree()
        tree.insert(prefix("10.0.0.0/8"), 1)
        assert tree.heap.live_allocations() == tree.node_count
        assert tree.node_count == 9  # root + 8 bit levels
