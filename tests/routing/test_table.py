"""Tests for the synthetic routing tables."""

import pytest

from repro.routing.table import (
    RoutingTableConfig,
    build_routing_table,
    covering_entries_for_trace,
    generate_route_entries,
    table_covering_trace,
)


class TestBackgroundRoutes:
    def test_count_and_default(self):
        config = RoutingTableConfig(background_routes=100)
        entries = generate_route_entries(config)
        assert len(entries) == 101  # + default
        assert entries[0].prefix.length == 0

    def test_no_default(self):
        config = RoutingTableConfig(background_routes=50, include_default=False)
        entries = generate_route_entries(config)
        assert len(entries) == 50
        assert all(e.prefix.length > 0 for e in entries)

    def test_realistic_length_mix(self):
        config = RoutingTableConfig(background_routes=2000)
        entries = generate_route_entries(config)
        lengths = [e.prefix.length for e in entries if e.prefix.length]
        share_24 = sum(1 for l in lengths if l == 24) / len(lengths)
        assert 0.3 < share_24 < 0.55  # /24 dominates real FIBs

    def test_unique_prefixes(self):
        entries = generate_route_entries(RoutingTableConfig(background_routes=500))
        keys = {(e.prefix.network, e.prefix.length) for e in entries}
        assert len(keys) == len(entries)

    def test_deterministic(self):
        a = generate_route_entries(RoutingTableConfig(seed=5))
        b = generate_route_entries(RoutingTableConfig(seed=5))
        assert a == b

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RoutingTableConfig(background_routes=-1)
        with pytest.raises(ValueError):
            RoutingTableConfig(host_route_fraction=2.0)


class TestCoveringRoutes:
    def test_every_destination_has_slash16(self, multi_flow_trace):
        config = RoutingTableConfig()
        entries = covering_entries_for_trace(multi_flow_trace, config)
        slash16 = {
            e.prefix.network for e in entries if e.prefix.length == 16
        }
        for packet in multi_flow_trace.packets:
            assert packet.dst_ip & 0xFFFF0000 in slash16 or (
                packet.src_ip & 0xFFFF0000 in slash16
            )

    def test_host_routes_cover_hottest(self, multi_flow_trace):
        config = RoutingTableConfig(host_route_fraction=0.5)
        entries = covering_entries_for_trace(multi_flow_trace, config)
        hosts = [e for e in entries if e.prefix.length == 32]
        assert hosts  # some host routes exist

    def test_zero_fractions(self, multi_flow_trace):
        config = RoutingTableConfig(host_route_fraction=0.0, slash24_fraction=0.0)
        entries = covering_entries_for_trace(multi_flow_trace, config)
        assert all(e.prefix.length == 16 for e in entries)


class TestBuiltTrees:
    def test_build_routing_table(self):
        tree = build_routing_table(RoutingTableConfig(background_routes=200))
        assert tree.entry_count == 201

    def test_table_covering_trace_resolves_all(self, multi_flow_trace):
        tree = table_covering_trace(multi_flow_trace)
        for packet in multi_flow_trace.packets:
            assert tree.lookup(packet.dst_ip) is not None

    def test_same_destinations_same_table(self, multi_flow_trace):
        a = table_covering_trace(multi_flow_trace)
        b = table_covering_trace(multi_flow_trace)
        assert a.entry_count == b.entry_count
