"""Tests for the three benchmark applications (Route, NAT, RTR)."""

import pytest

from repro.memsim.cache import CacheConfig
from repro.routing.nat import NatApp, NatConfig
from repro.routing.route import RouteApp
from repro.routing.rtr import RtrApp, RtrConfig
from repro.trace.trace import Trace

from tests.conftest import make_web_flow


class TestRouteApp:
    def test_forwards_every_packet(self, multi_flow_trace):
        app = RouteApp()
        result = app.run(multi_flow_trace)
        assert result.packets_processed == len(multi_flow_trace)
        assert app.forwarded == len(multi_flow_trace)
        assert app.dropped == 0

    def test_per_packet_accesses_recorded(self, multi_flow_trace):
        result = RouteApp().run(multi_flow_trace)
        counts = result.accesses_per_packet()
        assert len(counts) == len(multi_flow_trace)
        assert all(count > 0 for count in counts)

    def test_access_counts_in_paper_range(self, multi_flow_trace):
        result = RouteApp().run(multi_flow_trace)
        counts = result.accesses_per_packet()
        mean = sum(counts) / len(counts)
        # Figure 2's X axis spans ~50-200.
        assert 30 < mean < 200

    def test_profile_has_miss_rates(self, multi_flow_trace):
        result = RouteApp().run(multi_flow_trace)
        profile = result.profile(CacheConfig())
        assert len(profile) == len(multi_flow_trace)
        assert 0.0 <= profile.overall_miss_rate() <= 1.0

    def test_next_hop_histogram(self, multi_flow_trace):
        app = RouteApp()
        app.run(multi_flow_trace)
        histogram = app.next_hop_histogram()
        assert sum(histogram.values()) == len(multi_flow_trace)


class TestNatApp:
    def test_translations_per_flow(self, multi_flow_trace):
        app = NatApp()
        app.run(multi_flow_trace)
        # One translation per flow; all flows FIN so all removed.
        assert app.translations_created == 50
        assert app.translations_removed == 50
        assert app.live_translations() == 0

    def test_hits_for_subsequent_packets(self, multi_flow_trace):
        app = NatApp()
        app.run(multi_flow_trace)
        assert app.hits == len(multi_flow_trace) - 50

    def test_heap_reuse_on_flow_churn(self, multi_flow_trace):
        app = NatApp()
        app.run(multi_flow_trace)
        # Sequential flows free and re-allocate entries: the allocator's
        # free-list reuse path must fire ("memory needs to be released").
        assert app.heap.reuse_count > 0

    def test_unterminated_flow_stays(self):
        packets = make_web_flow()[:-1]  # no FIN
        app = NatApp()
        app.run(Trace(packets))
        assert app.live_translations() == 1

    def test_bucket_count_config(self, multi_flow_trace):
        app = NatApp(NatConfig(bucket_count=16))
        result = app.run(multi_flow_trace)
        assert result.packets_processed == len(multi_flow_trace)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NatConfig(bucket_count=0)


class TestRtrApp:
    def test_forwarding_and_header_work(self, multi_flow_trace):
        app = RtrApp()
        result = app.run(multi_flow_trace)
        assert app.forwarded == len(multi_flow_trace)
        assert app.expired == 0
        # RTR adds ring-buffer accesses on top of the trie walk.
        route_counts = RouteApp().run(multi_flow_trace).accesses_per_packet()
        rtr_counts = result.accesses_per_packet()
        assert sum(rtr_counts) > sum(route_counts)

    def test_ttl_expiry(self):
        from dataclasses import replace

        expired = [replace(p, ttl=1) for p in make_web_flow()]
        app = RtrApp()
        app.run(Trace(expired))
        assert app.expired == len(expired)
        assert app.forwarded == 0

    def test_ring_wraps(self, multi_flow_trace):
        app = RtrApp(RtrConfig(ring_slots=4))
        result = app.run(multi_flow_trace)
        assert result.packets_processed == len(multi_flow_trace)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RtrConfig(ring_slots=0)


class TestResultApi:
    def test_result_names(self, multi_flow_trace):
        result = RouteApp().run(multi_flow_trace)
        assert result.app_name == "route"
        assert result.trace_name == "multi-flow"
        profile = result.profile()
        assert profile.name == "route:multi-flow"
