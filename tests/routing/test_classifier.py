"""Tests for the two-field classifier app."""

import pytest

from repro.memsim.cache import CacheConfig
from repro.routing.classifier import ClassifierApp, ClassifierConfig
from repro.routing.route import RouteApp


class TestClassifier:
    def test_every_packet_classified(self, multi_flow_trace):
        app = ClassifierApp()
        result = app.run(multi_flow_trace)
        assert result.packets_processed == len(multi_flow_trace)
        assert app.matched + app.default_action == len(multi_flow_trace)

    def test_heavier_than_route(self, multi_flow_trace):
        # Two trie walks must cost more than one.
        classify = ClassifierApp().run(multi_flow_trace)
        route = RouteApp().run(multi_flow_trace)
        assert sum(classify.accesses_per_packet()) > sum(
            route.accesses_per_packet()
        )

    def test_profile_works(self, multi_flow_trace):
        result = ClassifierApp().run(multi_flow_trace)
        profile = result.profile(CacheConfig())
        assert len(profile) == len(multi_flow_trace)
        assert 0.0 <= profile.overall_miss_rate() <= 1.0

    def test_wildcard_rule_terminates(self, multi_flow_trace):
        # The per-rule wildcard source guarantees every dst-matched
        # packet resolves; with full dst coverage nothing should be
        # unmatched at the dst level.
        app = ClassifierApp()
        app.run(multi_flow_trace)
        assert app.matched + app.default_action == len(multi_flow_trace)

    def test_deterministic(self, multi_flow_trace):
        a = ClassifierApp().run(multi_flow_trace).accesses_per_packet()
        b = ClassifierApp().run(multi_flow_trace).accesses_per_packet()
        assert a == b

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ClassifierConfig(sources_per_rule=0)
        with pytest.raises(ValueError):
            ClassifierConfig(source_prefix_length=0)

    def test_original_vs_decompressed_similarity(self, small_web_trace):
        from repro.analysis.compare import kolmogorov_smirnov
        from repro.core import roundtrip

        decompressed, _ = roundtrip(small_web_trace)
        original_accs = ClassifierApp().run(small_web_trace).accesses_per_packet()
        decomp_accs = ClassifierApp().run(decompressed).accesses_per_packet()
        # The section 6 claim extends to the fourth app.
        assert kolmogorov_smirnov(original_accs, decomp_accs) < 0.2
