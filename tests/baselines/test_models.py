"""Tests for the analytic ratio models (equations 5-8)."""

import pytest

from repro.baselines.models import (
    GZIP_RATIO_ESTIMATE,
    PEUHKURI_RATIO_BOUND,
    paper_reference_distribution,
    proposed_model,
    proposed_ratio_for_length,
    vj_model,
    vj_ratio_for_length,
    weighted_ratio,
)
from repro.trace.stats import FlowLengthDistribution


class TestEquation5:
    def test_single_packet_flow_full_cost(self):
        # n=1: one full 40-byte header over 40 bytes.
        assert vj_ratio_for_length(1) == pytest.approx(1.0)

    def test_formula(self):
        # n=10: (40 + 6*9) / 400 = 94/400.
        assert vj_ratio_for_length(10) == pytest.approx(94 / 400)

    def test_asymptote_is_6_over_40(self):
        assert vj_ratio_for_length(100000) == pytest.approx(6 / 40, abs=1e-3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            vj_ratio_for_length(0)


class TestEquation7:
    def test_formula(self):
        # n=10: 8 / 400.
        assert proposed_ratio_for_length(10) == pytest.approx(0.02)

    def test_custom_record_size(self):
        assert proposed_ratio_for_length(10, flow_record_bytes=16) == pytest.approx(0.04)

    def test_decreases_with_length(self):
        assert proposed_ratio_for_length(50) < proposed_ratio_for_length(5)


class TestWeightedRatio:
    def test_byte_weighting(self):
        pmf = {2: 0.5, 10: 0.5}
        # bytes weighting: sum p*n*r(n) / sum p*n.
        expected = (0.5 * 2 * (8 / 80) + 0.5 * 10 * (8 / 400)) / (0.5 * 2 + 0.5 * 10)
        assert weighted_ratio(pmf, proposed_ratio_for_length) == pytest.approx(expected)

    def test_flow_weighting(self):
        pmf = {2: 1.0}
        assert weighted_ratio(
            pmf, proposed_ratio_for_length, weight="flows"
        ) == pytest.approx(8 / 80)

    def test_accepts_distribution_object(self):
        dist = FlowLengthDistribution.from_lengths([2, 2, 10, 10])
        value = weighted_ratio(dist, vj_ratio_for_length)
        assert 0.0 < value < 1.0

    def test_unknown_weighting_rejected(self):
        with pytest.raises(ValueError, match="weighting"):
            weighted_ratio({2: 1.0}, vj_ratio_for_length, weight="magic")

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            weighted_ratio({}, vj_ratio_for_length)


class TestPaperReproduction:
    def test_reference_distribution_is_normalized(self):
        pmf = paper_reference_distribution()
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_reference_matches_section3(self):
        pmf = paper_reference_distribution()
        short = sum(p for n, p in pmf.items() if n <= 50)
        assert short == pytest.approx(0.98, abs=0.005)
        mean = sum(n * p for n, p in pmf.items())
        packets_short = sum(n * p for n, p in pmf.items() if n <= 50) / mean
        assert packets_short == pytest.approx(0.75, abs=0.03)

    def test_vj_reproduces_30_percent(self):
        ratio = vj_model().trace_ratio(paper_reference_distribution())
        assert ratio == pytest.approx(0.30, abs=0.02)

    def test_proposed_reproduces_3_percent(self):
        ratio = proposed_model().trace_ratio(paper_reference_distribution())
        assert ratio == pytest.approx(0.03, abs=0.01)

    def test_constants(self):
        assert GZIP_RATIO_ESTIMATE == 0.50
        assert PEUHKURI_RATIO_BOUND == 0.16

    def test_method_ordering_on_reference(self):
        pmf = paper_reference_distribution()
        vj = vj_model().trace_ratio(pmf)
        proposed = proposed_model().trace_ratio(pmf)
        assert GZIP_RATIO_ESTIMATE > vj > PEUHKURI_RATIO_BOUND > proposed
