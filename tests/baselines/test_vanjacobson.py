"""Tests for the modified Van Jacobson header codec."""

import pytest

from repro.baselines.vanjacobson import (
    MIN_ENCODED_HEADER,
    VanJacobsonCodec,
    VJConfig,
)
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_SYN
from repro.trace.trace import Trace

from tests.conftest import CLIENT_IP, SERVER_IP, make_web_flow


def connection_key(packet):
    return (
        packet.src_ip, packet.dst_ip, packet.src_port, packet.dst_port,
        packet.seq, packet.ack, packet.flags, packet.payload_len,
        packet.window, packet.ip_id, packet.ttl,
    )


class TestRoundtrip:
    def test_single_flow_fields_exact(self, web_flow_packets):
        trace = Trace(web_flow_packets)
        codec = VanJacobsonCodec()
        restored = codec.decompress(codec.compress(trace))
        assert sorted(map(connection_key, trace.packets)) == sorted(
            map(connection_key, restored.packets)
        )

    def test_generated_trace_fields_exact(self, small_web_trace):
        codec = VanJacobsonCodec()
        restored = codec.decompress(codec.compress(small_web_trace))
        assert sorted(map(connection_key, small_web_trace.packets)) == sorted(
            map(connection_key, restored.packets)
        )

    def test_timestamps_millisecond_quantized(self, web_flow_packets):
        trace = Trace(web_flow_packets)
        codec = VanJacobsonCodec()
        restored = codec.decompress(codec.compress(trace))
        for original, rebuilt in zip(trace.packets, restored.packets):
            assert rebuilt.timestamp == pytest.approx(
                original.timestamp, abs=0.002
            )

    def test_empty_trace(self):
        codec = VanJacobsonCodec()
        assert len(codec.decompress(codec.compress(Trace()))) == 0


class TestEncodingSize:
    def test_delta_records_small(self):
        # Same-direction packets with tiny deltas: near-minimal records.
        packets = [
            PacketRecord(
                float(i) * 0.001, CLIENT_IP, SERVER_IP, 2000, 80,
                flags=TCP_ACK, seq=1000 + i, ack=500, payload_len=0,
                ip_id=i, window=8760,
            )
            for i in range(100)
        ]
        trace = Trace(packets)
        encoded = VanJacobsonCodec().compress(trace)
        # header(16) + 1 full record + 99 deltas; deltas ~9 bytes here
        # (type + cid + ts + mask + 2 varints).
        per_packet = (len(encoded) - 16) / 100
        assert per_packet < 12

    def test_min_encoded_header_constant(self):
        assert MIN_ENCODED_HEADER == 6  # the paper's modified minimum

    def test_ratio_in_paper_band(self, small_web_trace):
        ratio = VanJacobsonCodec().ratio(small_web_trace)
        # Paper models ~30%; the working codec lands in 25-45%.
        assert 0.20 < ratio < 0.50

    def test_beats_original(self, small_web_trace):
        assert VanJacobsonCodec().ratio(small_web_trace) < 1.0


class TestConfig:
    def test_only_paper_layout_supported(self):
        with pytest.raises(ValueError):
            VJConfig(cid_bytes=1)

    def test_bad_container_rejected(self):
        with pytest.raises(ValueError, match="container"):
            VanJacobsonCodec().decompress(b"junk" + bytes(20))
