"""Tests for the zlib-backed GZIP baseline."""

import pytest

from repro.baselines.gzip_like import GzipCodec, gzip_compressed_size
from repro.trace.trace import Trace


class TestGzipCodec:
    def test_lossless_roundtrip(self, small_web_trace):
        codec = GzipCodec()
        restored = codec.decompress(codec.compress(small_web_trace))
        assert restored.to_tsh_bytes() == small_web_trace.to_tsh_bytes()

    def test_ratio_in_band(self, small_web_trace):
        ratio = GzipCodec().ratio(small_web_trace)
        # The paper reports ~50% on TSH traces; synthetic headers land
        # in the 35-60% band.
        assert 0.30 < ratio < 0.65

    def test_empty_trace_ratio(self):
        assert GzipCodec().ratio(Trace()) == 0.0

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            GzipCodec(level=10)

    def test_higher_level_not_larger(self, small_web_trace):
        fast = gzip_compressed_size(small_web_trace, level=1)
        best = gzip_compressed_size(small_web_trace, level=9)
        assert best <= fast
