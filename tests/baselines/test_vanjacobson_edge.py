"""Edge-case tests for the VJ codec: wraps, gaps, flag churn."""

import pytest

from repro.baselines.vanjacobson import VanJacobsonCodec
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_PSH, TCP_SYN
from repro.trace.trace import Trace

from tests.conftest import CLIENT_IP, SERVER_IP


def codec_roundtrip(packets):
    codec = VanJacobsonCodec()
    return codec.decompress(codec.compress(Trace(packets)))


class TestTimestampWrap:
    def test_gap_beyond_16_bit_wrap_unwraps_monotonically(self):
        # The 16-bit millisecond timestamp wraps every 65.536 s; the
        # decoder unwraps per connection as long as per-packet gaps stay
        # below one wrap period.
        packets = [
            PacketRecord(
                float(i) * 30.0, CLIENT_IP, SERVER_IP, 2000, 80,
                flags=TCP_ACK, seq=i,
            )
            for i in range(8)  # spans 210 s: several wraps
        ]
        restored = codec_roundtrip(packets)
        times = [p.timestamp for p in restored.packets]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(210.0, abs=0.01)


class TestSequenceWrap:
    def test_seq_wraparound_delta(self):
        packets = [
            PacketRecord(
                0.0, CLIENT_IP, SERVER_IP, 2000, 80,
                flags=TCP_ACK, seq=0xFFFFFF00,
            ),
            PacketRecord(
                0.1, CLIENT_IP, SERVER_IP, 2000, 80,
                flags=TCP_ACK, seq=0x00000100,  # wrapped forward
            ),
        ]
        restored = codec_roundtrip(packets)
        seqs = sorted(p.seq for p in restored.packets)
        assert seqs == [0x00000100, 0xFFFFFF00]


class TestFlagChurn:
    def test_every_packet_different_flags(self):
        flag_cycle = [TCP_SYN, TCP_SYN | TCP_ACK, TCP_ACK, TCP_PSH | TCP_ACK,
                      TCP_FIN | TCP_ACK]
        packets = [
            PacketRecord(
                float(i) * 0.01, CLIENT_IP, SERVER_IP, 2000, 80,
                flags=flag_cycle[i % len(flag_cycle)], seq=i,
            )
            for i in range(10)
        ]
        restored = codec_roundtrip(packets)
        original_flags = sorted(p.flags for p in packets)
        restored_flags = sorted(p.flags for p in restored.packets)
        assert original_flags == restored_flags


class TestManyConnections:
    def test_thousand_connections_distinct_cids(self):
        packets = [
            PacketRecord(
                float(i) * 0.001, CLIENT_IP + i, SERVER_IP, 2000 + (i % 60000),
                80, flags=TCP_SYN,
            )
            for i in range(1000)
        ]
        restored = codec_roundtrip(packets)
        original_sources = {p.src_ip for p in packets}
        restored_sources = {p.src_ip for p in restored.packets}
        assert original_sources == restored_sources

    def test_first_packet_record_larger_than_delta(self):
        # Two-packet connection: first record carries the full header.
        codec = VanJacobsonCodec()
        one = codec.compress(
            Trace([
                PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_SYN),
            ])
        )
        two = codec.compress(
            Trace([
                PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_SYN),
                PacketRecord(0.1, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_SYN),
            ])
        )
        first_record = len(one) - 16  # minus container header
        delta_record = len(two) - len(one)
        assert delta_record < first_record
