"""Tests for canonical Huffman coding."""

import random

import pytest

from repro.baselines.huffman import (
    BitReader,
    BitWriter,
    build_huffman_code,
    code_from_lengths,
    huffman_decode,
    huffman_encode,
)


class TestBitIo:
    def test_roundtrip_bits(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0b1111, 4)
        writer.write_bits(0, 1)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(4) == 0b1111
        assert reader.read_bits(1) == 0

    def test_bit_length(self):
        writer = BitWriter()
        assert writer.bit_length() == 0
        writer.write_bits(1, 1)
        assert writer.bit_length() == 1
        writer.write_bits(0xFF, 8)
        assert writer.bit_length() == 9

    def test_write_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(4, 2)

    def test_read_past_end(self):
        reader = BitReader(b"")
        with pytest.raises(ValueError, match="exhausted"):
            reader.read_bit()


class TestCodeConstruction:
    def test_two_symbols_one_bit(self):
        code = build_huffman_code({0: 5, 1: 3})
        assert code.lengths == {0: 1, 1: 1}

    def test_single_symbol(self):
        code = build_huffman_code({42: 100})
        assert code.lengths == {42: 1}

    def test_empty_frequencies(self):
        assert build_huffman_code({}).lengths == {}

    def test_frequent_symbols_get_short_codes(self):
        code = build_huffman_code({0: 1000, 1: 10, 2: 10, 3: 1})
        assert code.lengths[0] <= code.lengths[1]
        assert code.lengths[1] <= code.lengths[3]

    def test_kraft_inequality(self):
        frequencies = {i: (i + 1) ** 2 for i in range(40)}
        code = build_huffman_code(frequencies)
        kraft = sum(2 ** -length for length in code.lengths.values())
        assert kraft <= 1.0 + 1e-12

    def test_length_limit_respected(self):
        # Fibonacci-like frequencies force long codes; the limit flattens.
        frequencies = {}
        a, b = 1, 1
        for symbol in range(25):
            frequencies[symbol] = a
            a, b = b, a + b
        code = build_huffman_code(frequencies, limit=10)
        assert max(code.lengths.values()) <= 10
        kraft = sum(2 ** -length for length in code.lengths.values())
        assert kraft <= 1.0 + 1e-12

    def test_canonical_reconstruction(self):
        code = build_huffman_code({i: i + 1 for i in range(16)})
        rebuilt = code_from_lengths(code.lengths)
        assert rebuilt.codes == code.codes


class TestEncodeDecode:
    def test_roundtrip(self):
        rng = random.Random(11)
        symbols = [rng.randrange(8) for _ in range(2000)]
        frequencies = {s: symbols.count(s) + 1 for s in range(8)}
        code = build_huffman_code(frequencies)
        encoded = huffman_encode(symbols, code)
        assert huffman_decode(encoded, code, len(symbols)) == symbols

    def test_compression_beats_fixed_width(self):
        # A skewed distribution should beat the 8-bit baseline.
        symbols = [0] * 900 + [1] * 50 + [2] * 30 + [3] * 20
        code = build_huffman_code({0: 900, 1: 50, 2: 30, 3: 20})
        encoded = huffman_encode(symbols, code)
        assert len(encoded) < len(symbols)  # < 8 bits per symbol

    def test_unknown_symbol_rejected(self):
        code = build_huffman_code({1: 1, 2: 1})
        with pytest.raises(ValueError, match="symbol"):
            huffman_encode([3], code)

    def test_decode_empty(self):
        code = build_huffman_code({1: 1, 2: 1})
        assert huffman_decode(b"", code, 0) == []
