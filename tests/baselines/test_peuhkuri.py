"""Tests for the Peuhkuri-style lossy codec."""

import pytest

from repro.baselines.peuhkuri import PeuhkuriCodec, PeuhkuriConfig
from repro.trace.trace import Trace


class TestRoundtrip:
    def test_preserved_fields(self, small_web_trace):
        codec = PeuhkuriCodec()
        restored = codec.decompress(codec.compress(small_web_trace))
        assert len(restored) == len(small_web_trace)
        for original, rebuilt in zip(small_web_trace.packets, restored.packets):
            assert rebuilt.src_ip == original.src_ip
            assert rebuilt.dst_ip == original.dst_ip
            assert rebuilt.src_port == original.src_port
            assert rebuilt.dst_port == original.dst_port
            assert rebuilt.flags == original.flags
            assert rebuilt.payload_len == original.payload_len
            assert rebuilt.timestamp == pytest.approx(
                original.timestamp, abs=2e-4
            )

    def test_lossy_fields_zeroed(self, small_web_trace):
        codec = PeuhkuriCodec()
        restored = codec.decompress(codec.compress(small_web_trace))
        assert all(p.seq == 0 for p in restored.packets[:10])

    def test_empty_trace(self):
        codec = PeuhkuriCodec()
        assert len(codec.decompress(codec.compress(Trace()))) == 0


class TestRatio:
    def test_around_16_percent(self, small_web_trace):
        ratio = PeuhkuriCodec().ratio(small_web_trace)
        # "the compression ratio bounded by 16%"
        assert 0.10 < ratio < 0.20

    def test_empty_ratio(self):
        assert PeuhkuriCodec().ratio(Trace()) == 0.0


class TestAnonymization:
    def test_anonymize_remaps_addresses(self, small_web_trace):
        codec = PeuhkuriCodec(PeuhkuriConfig(anonymize=True))
        restored = codec.decompress(codec.compress(small_web_trace))
        original_addresses = {p.src_ip for p in small_web_trace.packets}
        restored_addresses = {p.src_ip for p in restored.packets}
        assert not original_addresses & restored_addresses

    def test_anonymize_preserves_flow_structure(self, small_web_trace):
        codec = PeuhkuriCodec(PeuhkuriConfig(anonymize=True))
        restored = codec.decompress(codec.compress(small_web_trace))
        original_flows = {
            p.five_tuple().canonical() for p in small_web_trace.packets
        }
        restored_flows = {p.five_tuple().canonical() for p in restored.packets}
        assert len(original_flows) == len(restored_flows)

    def test_bad_container(self):
        with pytest.raises(ValueError, match="container"):
            PeuhkuriCodec().decompress(b"nope" + bytes(30))
