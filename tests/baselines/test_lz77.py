"""Tests for the from-scratch LZ77."""

import random

import pytest

from repro.baselines.lz77 import (
    LZ77_MAX_MATCH,
    LZ77_MIN_MATCH,
    WINDOW_SIZE,
    Token,
    lz77_compress,
    lz77_decompress,
)


class TestToken:
    def test_literal(self):
        token = Token.make_literal(65)
        assert token.is_literal
        assert token.literal == 65

    def test_literal_range(self):
        with pytest.raises(ValueError):
            Token.make_literal(256)

    def test_match(self):
        token = Token.make_match(10, 100)
        assert not token.is_literal

    def test_match_length_bounds(self):
        with pytest.raises(ValueError):
            Token.make_match(LZ77_MIN_MATCH - 1, 1)
        with pytest.raises(ValueError):
            Token.make_match(LZ77_MAX_MATCH + 1, 1)

    def test_match_distance_bounds(self):
        with pytest.raises(ValueError):
            Token.make_match(5, 0)
        with pytest.raises(ValueError):
            Token.make_match(5, WINDOW_SIZE + 1)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"aaa",
            b"abcabcabcabcabc",
            b"x" * 1000,
            bytes(range(256)) * 5,
        ],
        ids=["empty", "one", "two", "aaa", "repeat", "run", "cycle"],
    )
    def test_structured(self, data):
        assert lz77_decompress(lz77_compress(data)) == data

    def test_random_bytes(self):
        data = random.Random(3).randbytes(8000)
        assert lz77_decompress(lz77_compress(data)) == data

    def test_compressible_mix(self):
        rng = random.Random(4)
        data = b"".join(
            rng.choice([b"HEADERHEADER", b"PAYLOAD", rng.randbytes(5)])
            for _ in range(500)
        )
        assert lz77_decompress(lz77_compress(data)) == data

    def test_overlapping_copy(self):
        # 'aaaa...' forces matches whose source overlaps the output cursor.
        data = b"a" * 500
        tokens = lz77_compress(data)
        assert any(not t.is_literal for t in tokens)
        assert lz77_decompress(tokens) == data


class TestCompressionBehaviour:
    def test_repetitive_data_uses_matches(self):
        tokens = lz77_compress(b"0123456789" * 100)
        matches = [t for t in tokens if not t.is_literal]
        assert len(matches) > 0
        assert len(tokens) < 200  # 1000 bytes collapse into few tokens

    def test_incompressible_data_stays_literal(self):
        data = bytes(random.Random(9).randbytes(300))
        tokens = lz77_compress(data)
        literals = sum(1 for t in tokens if t.is_literal)
        assert literals > 250

    def test_decompress_rejects_bad_distance(self):
        with pytest.raises(ValueError, match="before stream start"):
            lz77_decompress([Token.make_match(3, 5)])
