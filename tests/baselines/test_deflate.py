"""Tests for the deflate-like pipeline, cross-checked against zlib."""

import random
import zlib

import pytest

from repro.baselines.deflate import deflate_compress, deflate_decompress


class TestRoundtrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"z",
            b"hello world hello world hello",
            bytes(1000),
            bytes(range(256)),
        ],
        ids=["empty", "single", "text", "zeros", "alphabet"],
    )
    def test_structured(self, data):
        assert deflate_decompress(deflate_compress(data)) == data

    def test_random(self):
        data = random.Random(17).randbytes(6000)
        assert deflate_decompress(deflate_compress(data)) == data

    def test_tsh_trace(self, small_web_trace):
        tsh = small_web_trace.to_tsh_bytes()
        assert deflate_decompress(deflate_compress(tsh)) == tsh


class TestRatio:
    def test_repetitive_compresses_hard(self):
        data = b"packetpacketpacket" * 300
        assert len(deflate_compress(data)) < len(data) // 10

    def test_tsh_ratio_tracks_zlib(self, small_web_trace):
        """The from-scratch codec lands near stdlib zlib (same family)."""
        tsh = small_web_trace.to_tsh_bytes()
        ours = len(deflate_compress(tsh)) / len(tsh)
        zlibs = len(zlib.compress(tsh, 6)) / len(tsh)
        assert abs(ours - zlibs) < 0.12
        # Both land in the paper's GZIP band for header traces.
        assert 0.30 < ours < 0.65

    def test_incompressible_no_explosion(self):
        data = random.Random(23).randbytes(4000)
        # Worst case: header + tables + ~9 bits per literal.
        assert len(deflate_compress(data)) < len(data) * 1.25 + 200


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="container"):
            deflate_decompress(b"nope" + bytes(200))

    def test_size_mismatch_detected(self):
        container = bytearray(deflate_compress(b"some payload here"))
        container[7] ^= 0x01  # corrupt the original-size field
        with pytest.raises(ValueError):
            deflate_decompress(bytes(container))
