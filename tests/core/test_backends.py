"""Backend-codec layer: registry, capabilities, tagged-section containers."""

import io
import struct

import pytest

from repro.core.backends import (
    AUTO,
    BackendCodec,
    available_backends,
    backend_for_tag,
    backend_names,
    choose_backend,
    get_backend,
    register_backend,
)
from repro.core.backends import base as backends_base
from repro.core.codec import (
    SECTION_NAMES,
    SECTION_TAG_BYTES,
    _HEADER,
    container_info,
    deserialize_compressed,
    serialize_compressed,
    serialize_compressed_v1,
)
from repro.core.compressor import compress_trace
from repro.core.errors import CodecError
from repro.synth import generate_web_trace

ALL_BACKENDS = ("raw", "zlib", "bz2", "lzma")


@pytest.fixture(scope="module")
def compressed():
    trace = generate_web_trace(duration=8.0, flow_rate=30.0, seed=3)
    return compress_trace(trace)


def canonical(trace) -> bytes:
    """Backend-independent byte identity: the legacy raw serialization."""
    return serialize_compressed_v1(trace)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_BACKENDS) <= set(backend_names())

    def test_tags_are_stable(self):
        # Wire tags are forever: files written today must decode tomorrow.
        assert {get_backend(n).tag for n in ALL_BACKENDS} == {0, 1, 2, 3}
        assert get_backend("raw").tag == 0

    def test_lookup_by_tag(self):
        for name in ALL_BACKENDS:
            codec = get_backend(name)
            assert backend_for_tag(codec.tag) is codec

    def test_unknown_name(self):
        with pytest.raises(CodecError, match="unknown backend 'zstd'"):
            get_backend("zstd")

    def test_unknown_tag(self):
        with pytest.raises(CodecError, match="unknown backend tag"):
            backend_for_tag(0x7F)

    def test_available_backends_order(self):
        names = [codec.name for codec in available_backends()]
        assert names[: len(ALL_BACKENDS)] == list(ALL_BACKENDS)

    def test_duplicate_registration_rejected(self):
        clone = BackendCodec(
            name="raw", tag=250,
            compress_fn=lambda d, level: d, decompress_fn=lambda d: d,
        )
        with pytest.raises(ValueError, match="name already registered"):
            register_backend(clone)
        clone = BackendCodec(
            name="raw2", tag=0,
            compress_fn=lambda d, level: d, decompress_fn=lambda d: d,
        )
        with pytest.raises(ValueError, match="tag already registered"):
            register_backend(clone)

    def test_auto_name_is_reserved(self):
        shadow = BackendCodec(
            name="auto", tag=252,
            compress_fn=lambda d, level: d, decompress_fn=lambda d: d,
        )
        with pytest.raises(ValueError, match="reserved"):
            register_backend(shadow)

    def test_third_party_backend_roundtrips(self, compressed):
        """An out-of-tree codec registered at runtime is fully usable."""
        xor = register_backend(
            BackendCodec(
                name="xor-test", tag=251,
                compress_fn=lambda d, level: bytes(b ^ 0x55 for b in d),
                decompress_fn=lambda d: bytes(b ^ 0x55 for b in d),
            )
        )
        try:
            data = serialize_compressed(compressed, backend="xor-test")
            assert canonical(deserialize_compressed(data)) == canonical(compressed)
            info = container_info(data)
            assert {s.backend for s in info.sections} == {"xor-test"}
        finally:
            del backends_base._BY_NAME[xor.name]
            del backends_base._BY_TAG[xor.tag]


class TestCapabilities:
    def test_raw_takes_no_level(self):
        raw = get_backend("raw")
        assert not raw.accepts_level
        with pytest.raises(CodecError, match="takes no compression level"):
            raw.compress(b"x", level=3)

    def test_level_ranges(self):
        assert get_backend("zlib").validate_level(None) == 6
        assert get_backend("bz2").validate_level(None) == 9
        with pytest.raises(CodecError, match="outside"):
            get_backend("zlib").validate_level(10)
        with pytest.raises(CodecError, match="outside"):
            get_backend("bz2").validate_level(0)

    def test_decode_failure_is_codec_error(self):
        with pytest.raises(CodecError, match="failed to decode"):
            get_backend("zlib").decompress(b"this is not deflate")


class TestContainerRoundtrips:
    @pytest.mark.parametrize("backend", [*ALL_BACKENDS, AUTO])
    def test_roundtrip(self, compressed, backend):
        data = serialize_compressed(compressed, backend=backend)
        assert canonical(deserialize_compressed(data)) == canonical(compressed)

    @pytest.mark.parametrize("backend", ["zlib", "bz2", "lzma"])
    def test_entropy_backends_shrink_the_file(self, compressed, backend):
        raw_size = len(serialize_compressed(compressed))
        assert len(serialize_compressed(compressed, backend=backend)) < raw_size

    def test_level_changes_output_not_content(self, compressed):
        fast = serialize_compressed(compressed, backend="zlib", level=1)
        best = serialize_compressed(compressed, backend="zlib", level=9)
        assert len(best) <= len(fast)
        assert canonical(deserialize_compressed(fast)) == canonical(
            deserialize_compressed(best)
        )

    def test_explicit_level_on_raw_rejected(self, compressed):
        with pytest.raises(CodecError, match="takes no compression level"):
            serialize_compressed(compressed, backend="raw", level=3)

    def test_per_section_mapping(self, compressed):
        data = serialize_compressed(
            compressed, backend={"time_seq": "zlib", "address": "lzma"}
        )
        info = container_info(data)
        by_name = {s.name: s.backend for s in info.sections}
        assert by_name["time_seq"] == "zlib"
        assert by_name["address"] == "lzma"
        assert by_name["short_flows_template"] == "raw"
        assert canonical(deserialize_compressed(data)) == canonical(compressed)

    def test_mapping_rejects_unknown_section(self, compressed):
        with pytest.raises(CodecError, match="unknown section names"):
            serialize_compressed(compressed, backend={"nope": "zlib"})

    def test_unknown_backend_name_rejected_before_writing(self, compressed):
        with pytest.raises(CodecError, match="unknown backend"):
            serialize_compressed(compressed, backend="zstd")

    def test_empty_container_all_backends(self):
        from repro.core.datasets import CompressedTrace

        empty = CompressedTrace(name="empty")
        for backend in (*ALL_BACKENDS, AUTO):
            restored = deserialize_compressed(
                serialize_compressed(empty, backend=backend)
            )
            assert restored.flow_count() == 0


class TestAutoSelection:
    def test_auto_at_most_best_uniform_choice(self, compressed):
        auto_size = len(serialize_compressed(compressed, backend=AUTO))
        single = min(
            len(serialize_compressed(compressed, backend=b)) for b in ALL_BACKENDS
        )
        # Auto picks per section, so it can only tie or beat the best
        # uniform choice (up to sample-vs-full divergence; none here,
        # the sample covers these small sections entirely).
        assert auto_size <= single

    def test_incompressible_data_stays_raw(self):
        import random

        rng = random.Random(1)
        noise = bytes(rng.randrange(256) for _ in range(4096))
        assert choose_backend(noise).name == "raw"

    def test_compressible_data_leaves_raw(self):
        assert choose_backend(b"abab" * 4096).name != "raw"

    def test_candidate_restriction(self):
        codec = choose_backend(b"abab" * 4096, candidates=("raw", "bz2"))
        assert codec.name in ("raw", "bz2")

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="at least one candidate"):
            choose_backend(b"x", candidates=())

    def test_advisory_level_outside_one_candidates_range(self, compressed):
        # bz2's range starts at 1; under auto a level of 0 is advisory,
        # so bz2 trials at its default instead of failing the write.
        data = serialize_compressed(compressed, backend=AUTO, level=0)
        assert canonical(deserialize_compressed(data)) == canonical(compressed)

    def test_advisory_level_helper(self):
        assert get_backend("raw").advisory_level(3) is None
        assert get_backend("bz2").advisory_level(0) is None
        assert get_backend("zlib").advisory_level(0) == 0
        assert get_backend("zlib").advisory_level(None) is None

    def test_auto_is_not_a_wire_name(self, compressed):
        data = serialize_compressed(compressed, backend=AUTO)
        info = container_info(data)
        assert all(s.backend != AUTO for s in info.sections)


def _first_tag_offset(data: bytes) -> int:
    """Byte offset of the first section tag in a v2 container."""
    name_length = struct.unpack_from(">H", data, 6)[0]
    return _HEADER.size + name_length


class TestCorruptTags:
    def test_unknown_backend_tag_fails_cleanly(self, compressed):
        data = bytearray(serialize_compressed(compressed, backend="zlib"))
        data[_first_tag_offset(bytes(data))] = 0x7F
        with pytest.raises(CodecError, match="unknown backend tag"):
            deserialize_compressed(bytes(data))

    def test_corrupt_payload_fails_cleanly(self, compressed):
        data = bytearray(serialize_compressed(compressed, backend="zlib"))
        # Flip a byte inside the first section's compressed payload.
        offset = _first_tag_offset(bytes(data)) + 4 * SECTION_TAG_BYTES
        data[offset] ^= 0xFF
        with pytest.raises(CodecError):
            deserialize_compressed(bytes(data))

    def test_raw_length_mismatch_detected(self, compressed):
        data = bytearray(serialize_compressed(compressed, backend="zlib"))
        tag_offset = _first_tag_offset(bytes(data))
        # The tag's raw-length field is the second u32 after the tag byte.
        (raw_length,) = struct.unpack_from(">I", data, tag_offset + 5)
        struct.pack_into(">I", data, tag_offset + 5, raw_length + 1)
        with pytest.raises(CodecError, match="tag promised"):
            deserialize_compressed(bytes(data))

    def test_truncated_payload(self, compressed):
        data = serialize_compressed(compressed, backend="zlib")
        with pytest.raises(CodecError, match="truncated"):
            deserialize_compressed(data[:-5])

    def test_decompression_bomb_rejected_without_expanding(self, compressed):
        """A payload inflating past its declared raw length dies at the cap.

        The crafted first section stores ~10 KB of zlib that would expand
        to 10 MB; the bounded decoder must abort at raw_length + 1 bytes,
        not materialize the bomb and length-check afterwards.
        """
        import zlib as _zlib

        base = serialize_compressed(compressed, backend="zlib")
        tag_offset = _first_tag_offset(base)
        (_, old_stored, old_raw) = struct.unpack_from(">BII", base, tag_offset)
        bomb = _zlib.compress(b"\x00" * 10_000_000, 9)
        data = bytearray(base)
        struct.pack_into(">BII", data, tag_offset, 1, len(bomb), old_raw)
        payload_start = tag_offset + 4 * SECTION_TAG_BYTES
        data[payload_start : payload_start + old_stored] = bomb
        with pytest.raises(CodecError, match="exceeds the declared"):
            deserialize_compressed(bytes(data))

    def test_bounded_decompress_cap(self):
        import zlib as _zlib

        zl = get_backend("zlib")
        payload = _zlib.compress(b"a" * 1000)
        assert zl.decompress(payload, max_size=1000) == b"a" * 1000
        with pytest.raises(CodecError, match="exceeds the declared"):
            zl.decompress(payload, max_size=999)
        for name in ("bz2", "lzma", "raw"):
            codec = get_backend(name)
            encoded = codec.compress(b"b" * 500)
            assert codec.decompress(encoded, max_size=500) == b"b" * 500
            with pytest.raises(CodecError, match="exceeds"):
                codec.decompress(encoded, max_size=100)


class TestContainerInfo:
    def test_sections_in_order(self, compressed):
        info = container_info(serialize_compressed(compressed))
        assert tuple(s.name for s in info.sections) == SECTION_NAMES
        assert info.format_version == 2

    def test_v1_info_reports_raw(self, compressed):
        info = container_info(serialize_compressed_v1(compressed))
        assert info.format_version == 1
        assert all(s.backend == "raw" for s in info.sections)
        assert all(s.stored_bytes == s.raw_bytes for s in info.sections)

    def test_dataset_sizes_total_matches_either_generation(self, compressed):
        from repro.core.codec import dataset_sizes

        v1_total = dataset_sizes(compressed, format_version=1)["total"]
        v2_total = dataset_sizes(compressed)["total"]
        assert v1_total == len(serialize_compressed_v1(compressed))
        assert v2_total == len(serialize_compressed(compressed))
        assert v2_total == v1_total + 4 * SECTION_TAG_BYTES

    def test_stored_vs_raw_accounting(self, compressed):
        data = serialize_compressed(compressed, backend="zlib")
        info = container_info(data)
        assert info.total_bytes == len(data)
        for section in info.sections:
            if section.raw_bytes > 64:
                assert section.stored_bytes < section.raw_bytes

    def test_truncated_container_rejected(self, compressed):
        data = serialize_compressed(compressed, backend="zlib")
        with pytest.raises(CodecError, match="truncated"):
            container_info(data[: len(data) // 2])
