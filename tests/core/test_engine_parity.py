"""Engine parity at the edge shapes the differential fuzz rarely lands on.

`tests/property/test_columnar_identity.py` proves identity statistically;
this file pins the named corners — empty input, a single packet, flows
straddling chunk boundaries, idle eviction firing mid-chunk, rebase on
out-of-order input, explicit base times — so a regression in any one of
them fails a test that says exactly which corner broke.
"""

import pytest

from repro.core.codec import serialize_compressed
from repro.core.columnar import (
    ENGINE_COLUMNAR,
    ENGINE_SCALAR,
    ColumnarFlowCompressor,
    resolve_engine,
)
from repro.core.compressor import CompressorConfig, FlowClusterCompressor
from repro.core.errors import CompressionError
from repro.net.columns import columns_from_records, empty_columns
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN

CLIENT = 0x0A000001
SERVER = 0x0A000002


def _packet(ts, sport=4000, dport=80, flags=TCP_ACK, payload=100, reverse=False):
    src, dst = (SERVER, CLIENT) if reverse else (CLIENT, SERVER)
    return PacketRecord(
        timestamp=ts,
        src_ip=src,
        dst_ip=dst,
        src_port=dport if reverse else sport,
        dst_port=sport if reverse else dport,
        protocol=6,
        flags=flags,
        payload_len=payload,
    )


def _flow(start, sport, n):
    packets = [_packet(start, sport, flags=TCP_SYN, payload=0)]
    packets += [
        _packet(start + 0.01 * i, sport, reverse=bool(i % 2))
        for i in range(1, n - 1)
    ]
    packets.append(_packet(start + 0.01 * n, sport, flags=TCP_FIN, payload=0))
    return packets


def _scalar(packets, config=None, **kwargs):
    engine = FlowClusterCompressor(config, name="t", **kwargs)
    for packet in packets:
        engine.add_packet(packet)
    return serialize_compressed(engine.finish())


def _columnar(packets, config=None, chunk=3, **kwargs):
    engine = ColumnarFlowCompressor(config, name="t", **kwargs)
    for start in range(0, len(packets), chunk):
        engine.feed_columns(columns_from_records(packets[start : start + chunk]))
    return serialize_compressed(engine.finish())


def test_empty_trace():
    assert _columnar([]) == _scalar([])


def test_empty_chunks_are_inert():
    engine = ColumnarFlowCompressor(name="t")
    engine.feed_columns(empty_columns())
    engine.feed_columns(columns_from_records(_flow(0.0, 4000, 5)))
    engine.feed_columns(empty_columns())
    assert serialize_compressed(engine.finish()) == _scalar(_flow(0.0, 4000, 5))


def test_single_packet_flow():
    packets = [_packet(1.0, flags=TCP_SYN, payload=0)]
    assert _columnar(packets) == _scalar(packets)


def test_single_packet_terminated_flow():
    packets = [_packet(1.0, flags=TCP_FIN)]
    assert _columnar(packets) == _scalar(packets)


def test_flow_straddles_chunk_boundary():
    """One flow's packets split across feed_columns calls at every offset."""
    packets = _flow(0.0, 4000, 9) + _flow(0.05, 4001, 9)
    expected = _scalar(packets)
    for chunk in range(1, len(packets) + 1):
        assert _columnar(packets, chunk=chunk) == expected


def test_idle_eviction_mid_chunk():
    """A later packet inside one chunk evicts an idle flow fed earlier."""
    config = CompressorConfig(idle_timeout=1.0)
    packets = (
        _flow(0.0, 4000, 4)[:-1]  # unterminated: stays active
        + [_packet(5.0, 4001), _packet(5.1, 4001, flags=TCP_FIN)]
    )
    expected = _scalar(packets, config)
    # All in one chunk and split right at the eviction trigger.
    assert _columnar(packets, config, chunk=len(packets)) == expected
    assert _columnar(packets, config, chunk=3) == expected


def test_rebase_on_out_of_order_timestamps():
    """A packet earlier than the auto base rewrites emitted offsets."""
    packets = [
        _packet(10.0, 4000, flags=TCP_SYN, payload=0),
        _packet(10.1, 4000),
        _packet(2.0, 4001, flags=TCP_SYN, payload=0),  # forces rebase
        _packet(10.2, 4000, flags=TCP_FIN),
        _packet(2.5, 4001, flags=TCP_FIN),
    ]
    expected = _scalar(packets)
    for chunk in (1, 2, len(packets)):
        assert _columnar(packets, chunk=chunk) == expected


def test_explicit_base_time():
    packets = _flow(100.0, 4000, 6)
    assert _columnar(packets, base_time=90.0) == _scalar(packets, base_time=90.0)


@pytest.mark.parametrize("factory", [FlowClusterCompressor, ColumnarFlowCompressor])
def test_add_after_finish_raises(factory):
    engine = factory(name="t")
    engine.finish()
    with pytest.raises(CompressionError, match="already finished"):
        engine.add_packet(_packet(0.0))


def test_feed_after_finish_raises():
    engine = ColumnarFlowCompressor(name="t")
    engine.finish()
    with pytest.raises(CompressionError, match="already finished"):
        engine.feed_columns(columns_from_records([_packet(0.0)]))


def test_columnar_add_packet_matches_feed():
    """The scalar-compatible add_packet entry point is the same engine."""
    packets = _flow(0.0, 4000, 7) + _flow(0.2, 4001, 3)
    engine = ColumnarFlowCompressor(name="t")
    for packet in packets:
        engine.add_packet(packet)
    assert serialize_compressed(engine.finish()) == _scalar(packets)


def test_stats_parity():
    packets = _flow(0.0, 4000, 7) + _flow(0.2, 4001, 3) + _flow(0.5, 4002, 4)[:-1]
    scalar = FlowClusterCompressor(name="t")
    columnar = ColumnarFlowCompressor(name="t")
    scalar_peak = 0
    for packet in packets:
        scalar.add_packet(packet)
        scalar_peak = max(scalar_peak, scalar.active_flows)
    columnar.feed_columns(columns_from_records(packets))
    assert columnar.active_flows == scalar.active_flows
    assert columnar.peak_active_flows == scalar_peak
    scalar_out, columnar_out = scalar.finish(), columnar.finish()
    assert columnar_out.original_packet_count == scalar_out.original_packet_count
    assert columnar_out.flow_count() == scalar_out.flow_count()


def test_resolve_engine():
    from repro.net.columns import numpy_or_none

    auto = ENGINE_COLUMNAR if numpy_or_none() is not None else ENGINE_SCALAR
    assert resolve_engine(None) == auto
    assert resolve_engine("auto") == auto
    assert resolve_engine("scalar") == ENGINE_SCALAR
    assert resolve_engine("columnar") == ENGINE_COLUMNAR
    with pytest.raises(ValueError, match="engine must be one of"):
        resolve_engine("vectorized")


def test_resolve_engine_without_numpy(monkeypatch):
    from repro.net import columns

    monkeypatch.setattr(columns, "_np", None)
    monkeypatch.setattr(columns, "_numpy_checked", True)
    assert resolve_engine("auto") == ENGINE_SCALAR
    assert resolve_engine("columnar") == ENGINE_COLUMNAR
