"""Tests for the streaming/parallel compression engine."""

import pytest

from repro.core.codec import serialize_compressed
from repro.core.compressor import CompressorConfig, TemplateMatcher, compress_trace
from repro.core.datasets import (
    AddressTable,
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.decompressor import decompress_trace
from repro.core.errors import CompressionError
from repro.core.streaming import (
    StreamingCompressor,
    compress_stream,
    compress_tsh_file,
    compress_tsh_file_parallel,
    merge_compressed,
    record_shard,
)
from repro.trace.reader import iter_tsh_records
from repro.trace.tsh import decode_record
from repro.synth import generate_web_trace
from repro.trace.trace import Trace

from tests.conftest import make_web_flow


@pytest.fixture(scope="module")
def web_trace():
    return generate_web_trace(duration=4.0, flow_rate=30.0, seed=3)


@pytest.fixture(scope="module")
def web_tsh(web_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("streaming") / "web.tsh"
    web_trace.save_tsh(path)
    return path


class TestStreamingCompressor:
    @pytest.mark.parametrize("chunk_size", [1, 13, 500])
    def test_chunked_feed_matches_batch(self, web_trace, chunk_size):
        batch = serialize_compressed(compress_trace(web_trace))
        compressor = StreamingCompressor(name=web_trace.name)
        packets = web_trace.packets
        for start in range(0, len(packets), chunk_size):
            compressor.feed(packets[start : start + chunk_size])
        assert serialize_compressed(compressor.finish()) == batch

    def test_feed_counts(self, web_trace):
        compressor = StreamingCompressor()
        fed = compressor.feed(web_trace.packets[:100])
        assert fed == 100
        assert compressor.streaming_stats.packets_fed == 100
        assert compressor.streaming_stats.chunks_fed == 1
        assert compressor.streaming_stats.peak_active_flows >= 1
        assert compressor.active_flows <= compressor.streaming_stats.peak_active_flows

    def test_add_after_finish_raises(self):
        packets = make_web_flow()
        compressor = StreamingCompressor()
        compressor.feed(packets)
        compressor.finish()
        with pytest.raises(CompressionError):
            compressor.add_packet(packets[0])

    def test_compress_stream_matches_batch(self, web_trace):
        streamed = compress_stream(iter(web_trace.packets), name=web_trace.name)
        batch = compress_trace(web_trace)
        assert serialize_compressed(streamed) == serialize_compressed(batch)


class TestCompressTshFile:
    def test_matches_batch_bytes(self, web_tsh):
        # Compare against a batch run over the *file* — TSH stores µs
        # resolution, so the saved trace is the common ground truth.
        loaded = Trace.load_tsh(web_tsh)
        compressor = compress_tsh_file(web_tsh, chunk_size=64, name=loaded.name)
        batch = serialize_compressed(compress_trace(loaded))
        assert serialize_compressed(compressor.output) == batch

    def test_name_defaults_to_stem(self, web_tsh):
        compressor = compress_tsh_file(web_tsh)
        assert compressor.output.name == "web"

    def test_stats_populated(self, web_trace, web_tsh):
        compressor = compress_tsh_file(web_tsh, chunk_size=256)
        assert compressor.streaming_stats.packets_fed == len(web_trace)
        assert compressor.streaming_stats.chunks_fed >= len(web_trace) // 256
        assert 0 < compressor.streaming_stats.peak_active_flows < len(web_trace)


def _single_flow_shard(vector, timestamp=0.0, address=0xC0A80001):
    """A one-flow shard with a given short-template vector."""
    addresses = AddressTable([address])
    return CompressedTrace(
        short_templates=[ShortFlowTemplate(tuple(vector))],
        addresses=addresses,
        time_seq=[
            TimeSeqRecord(
                timestamp=timestamp,
                dataset=DatasetId.SHORT,
                template_index=0,
                address_index=0,
                rtt=0.01,
            )
        ],
        original_packet_count=len(vector),
    )


class TestMergeCompressed:
    def test_empty(self):
        merged = merge_compressed([], name="nothing")
        assert merged.flow_count() == 0
        assert merged.name == "nothing"

    def test_identical_templates_collapse(self):
        shards = [
            _single_flow_shard((4, 16, 32), timestamp=1.0),
            _single_flow_shard((4, 16, 32), timestamp=0.5, address=0xC0A80002),
        ]
        merged = merge_compressed(shards)
        assert len(merged.short_templates) == 1
        assert len(merged.addresses) == 2
        assert [r.timestamp for r in merged.time_seq] == [0.5, 1.0]
        assert all(r.template_index == 0 for r in merged.time_seq)
        merged.validate()

    def test_distinct_templates_kept(self):
        shards = [
            _single_flow_shard((4, 16, 32)),
            _single_flow_shard((200, 200, 200, 200)),
        ]
        merged = merge_compressed(shards)
        assert len(merged.short_templates) == 2
        merged.validate()

    def test_long_templates_reindexed(self):
        long_template = LongFlowTemplate(
            values=tuple(range(60)), gaps=tuple(0.001 for _ in range(60))
        )
        shard_a = _single_flow_shard((4, 16))
        shard_b = CompressedTrace(
            long_templates=[long_template],
            addresses=AddressTable([0xC0A80003]),
            time_seq=[
                TimeSeqRecord(
                    timestamp=2.0,
                    dataset=DatasetId.LONG,
                    template_index=0,
                    address_index=0,
                )
            ],
            original_packet_count=60,
        )
        merged = merge_compressed([shard_a, shard_b])
        assert len(merged.long_templates) == 1
        long_records = [
            r for r in merged.time_seq if r.dataset is DatasetId.LONG
        ]
        assert long_records[0].template_index == 0
        assert merged.original_packet_count == 62
        merged.validate()

    def test_address_remap(self):
        shards = [
            _single_flow_shard((1, 2), address=0xC0A80001),
            _single_flow_shard((3, 4), address=0xC0A80001),
        ]
        merged = merge_compressed(shards)
        assert len(merged.addresses) == 1
        assert all(r.address_index == 0 for r in merged.time_seq)


class TestParallel:
    def test_rejects_zero_workers(self, web_tsh):
        with pytest.raises(ValueError, match="workers"):
            compress_tsh_file_parallel(web_tsh, 0)

    def test_single_worker_matches_batch(self, web_tsh):
        loaded = Trace.load_tsh(web_tsh)
        compressed = compress_tsh_file_parallel(web_tsh, 1, name=loaded.name)
        batch = serialize_compressed(compress_trace(loaded))
        assert serialize_compressed(compressed) == batch

    def test_two_workers_cover_every_flow(self, web_trace, web_tsh):
        compressed = compress_tsh_file_parallel(web_tsh, 2)
        batch = compress_trace(web_trace)
        assert compressed.flow_count() == batch.flow_count()
        assert compressed.original_packet_count == batch.original_packet_count
        compressed.validate()

    def test_two_workers_roundtrip(self, web_trace, web_tsh):
        compressed = compress_tsh_file_parallel(web_tsh, 2)
        restored = decompress_trace(compressed)
        assert len(restored) == len(web_trace)

    def test_timestamps_anchored_to_trace_start(self, web_tsh):
        compressed = compress_tsh_file_parallel(web_tsh, 3)
        batch = compress_trace(Trace.load_tsh(web_tsh))
        # Shards see different first packets; anchoring must keep the
        # relative clocks equal to the batch run's.
        assert sorted(r.timestamp for r in compressed.time_seq) == pytest.approx(
            sorted(r.timestamp for r in batch.time_seq)
        )


class TestIdleEvictionOrdering:
    def test_out_of_order_open_is_still_evicted(self):
        from repro.net.tcp import TCP_ACK, TCP_SYN
        from repro.net.packet import PacketRecord

        config = CompressorConfig(idle_timeout=10.0)
        compressor = StreamingCompressor(config)
        client_a, client_b, server = 0x8D5A0101, 0x8D5A0102, 0xC0A80050
        compressor.add_packet(
            PacketRecord(100.0, client_a, server, 2000, 80, flags=TCP_SYN)
        )
        # Out-of-order packet opens a flow *behind* the clock; the idle
        # bound must drop so the next scan still sees it as stale.
        compressor.add_packet(
            PacketRecord(30.0, client_b, server, 2001, 80, flags=TCP_SYN)
        )
        compressor.add_packet(
            PacketRecord(102.0, client_a, server, 2000, 80, flags=TCP_ACK)
        )
        assert compressor.active_flows == 1  # only flow A remains open
        assert compressor.output.flow_count() == 1  # flow B was evicted


class TestRecordShard:
    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_flows_stay_whole(self, web_tsh, workers):
        """Every packet of a canonical flow must map to one shard."""
        shard_by_flow: dict = {}
        for record in iter_tsh_records(web_tsh, 512):
            shard = record_shard(record, workers)
            assert 0 <= shard < workers
            key = decode_record(record).five_tuple().canonical()
            assert shard_by_flow.setdefault(key, shard) == shard
        # The hash must actually spread flows, not collapse them.
        assert len(set(shard_by_flow.values())) == workers

    def test_both_directions_same_shard(self, web_tsh):
        from repro.trace.tsh import encode_record

        record = next(iter_tsh_records(web_tsh))
        reply = encode_record(decode_record(record).reversed())
        for workers in (2, 3, 7):
            assert record_shard(record, workers) == record_shard(reply, workers)


class TestTemplateMatcher:
    def test_prepopulated_index(self):
        templates = [ShortFlowTemplate((1, 2, 3)), ShortFlowTemplate((9, 9))]
        matcher = TemplateMatcher(templates, CompressorConfig())
        assert matcher.find((1, 2, 3)) == 0
        assert matcher.find((9, 9)) == 1
        assert matcher.find((7, 7, 7, 7)) is None

    def test_add_registers_for_search(self):
        templates: list[ShortFlowTemplate] = []
        matcher = TemplateMatcher(templates, CompressorConfig())
        index = matcher.add((5, 6, 7))
        assert index == 0
        assert templates[0].values == (5, 6, 7)
        assert matcher.find((5, 6, 7)) == 0
