"""Tests for the four compressed datasets."""

import pytest

from repro.core.datasets import (
    AddressTable,
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)


class TestShortFlowTemplate:
    def test_n_is_value_count(self):
        assert ShortFlowTemplate((4, 16, 32)).n == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShortFlowTemplate(())

    def test_rejects_out_of_byte_range(self):
        with pytest.raises(ValueError):
            ShortFlowTemplate((256,))
        with pytest.raises(ValueError):
            ShortFlowTemplate((-1,))


class TestLongFlowTemplate:
    def test_valid(self):
        template = LongFlowTemplate((1, 2, 3), (0.1, 0.2, 0.0))
        assert template.n == 3

    def test_rejects_mismatched_gaps(self):
        with pytest.raises(ValueError, match="mismatch"):
            LongFlowTemplate((1, 2), (0.1,))

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError, match="negative"):
            LongFlowTemplate((1,), (-0.5,))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LongFlowTemplate((), ())


class TestAddressTable:
    def test_intern_returns_stable_index(self):
        table = AddressTable()
        first = table.intern(0x0A000001)
        second = table.intern(0x0A000002)
        assert (first, second) == (0, 1)
        assert table.intern(0x0A000001) == 0
        assert len(table) == 2

    def test_lookup(self):
        table = AddressTable([1, 2, 3])
        assert table.lookup(1) == 2

    def test_iteration_order(self):
        table = AddressTable([5, 3, 9])
        assert list(table) == [5, 3, 9]

    def test_rejects_bad_address(self):
        with pytest.raises(ValueError):
            AddressTable().intern(1 << 32)

    def test_addresses_copy(self):
        table = AddressTable([1])
        table.addresses().append(99)
        assert len(table) == 1


class TestTimeSeqRecord:
    def test_valid(self):
        record = TimeSeqRecord(1.5, DatasetId.SHORT, 0, 0, rtt=0.05)
        assert record.dataset is DatasetId.SHORT

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timestamp=-1.0, dataset=DatasetId.SHORT, template_index=0, address_index=0),
            dict(timestamp=0.0, dataset=DatasetId.SHORT, template_index=-1, address_index=0),
            dict(timestamp=0.0, dataset=DatasetId.SHORT, template_index=0, address_index=-2),
            dict(timestamp=0.0, dataset=DatasetId.SHORT, template_index=0, address_index=0, rtt=-0.1),
        ],
    )
    def test_rejects_negatives(self, kwargs):
        with pytest.raises(ValueError):
            TimeSeqRecord(**kwargs)


def build_compressed() -> CompressedTrace:
    compressed = CompressedTrace(name="t")
    compressed.short_templates.append(ShortFlowTemplate((4, 16, 52)))
    compressed.long_templates.append(
        LongFlowTemplate(tuple([32] * 60), tuple([0.01] * 60))
    )
    compressed.addresses.intern(0xC0A80001)
    compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.SHORT, 0, 0, 0.05))
    compressed.time_seq.append(TimeSeqRecord(1.0, DatasetId.LONG, 0, 0))
    return compressed


class TestCompressedTrace:
    def test_counts(self):
        compressed = build_compressed()
        assert compressed.flow_count() == 2
        assert compressed.template_counts() == (1, 1)
        assert compressed.packet_count() == 63

    def test_template_resolution(self):
        compressed = build_compressed()
        assert compressed.template_for(compressed.time_seq[0]).n == 3
        assert compressed.template_for(compressed.time_seq[1]).n == 60

    def test_sorted_time_seq(self):
        compressed = build_compressed()
        compressed.time_seq.append(TimeSeqRecord(0.5, DatasetId.SHORT, 0, 0))
        stamps = [r.timestamp for r in compressed.sorted_time_seq()]
        assert stamps == sorted(stamps)

    def test_validate_passes(self):
        build_compressed().validate()

    def test_validate_rejects_dangling_template(self):
        compressed = build_compressed()
        compressed.time_seq.append(TimeSeqRecord(2.0, DatasetId.SHORT, 7, 0))
        with pytest.raises(ValueError, match="template index"):
            compressed.validate()

    def test_validate_rejects_dangling_address(self):
        compressed = build_compressed()
        compressed.time_seq.append(TimeSeqRecord(2.0, DatasetId.SHORT, 0, 9))
        with pytest.raises(ValueError, match="address index"):
            compressed.validate()
