"""Tests for the compressor's active-flow linked list."""

import pytest

from repro.core.linkedlist import ActiveFlowList, FlowNode
from repro.flows.model import Direction
from repro.net.flowkey import FiveTuple


def tuple_for(port: int) -> FiveTuple:
    return FiveTuple(0x0A000001, 0xC0A80001, 6, port, 80)


class TestFlowNode:
    def test_key_is_canonical(self):
        node = FlowNode(tuple_for(2000), 1.0)
        assert node.key == tuple_for(2000).canonical()

    def test_append_and_vector(self):
        node = FlowNode(tuple_for(2000), 1.0)
        node.append_packet(1.0, 4, Direction.CLIENT_TO_SERVER)
        node.append_packet(1.1, 16, Direction.SERVER_TO_CLIENT)
        assert node.vector() == (4, 16)
        assert node.packet_count == 2

    def test_inter_packet_gaps(self):
        node = FlowNode(tuple_for(2000), 1.0)
        node.append_packet(1.0, 4, Direction.CLIENT_TO_SERVER)
        node.append_packet(1.5, 16, Direction.SERVER_TO_CLIENT)
        node.append_packet(2.5, 32, Direction.CLIENT_TO_SERVER)
        assert node.inter_packet_gaps() == [0.5, 1.0, 0.0]

    def test_estimate_rtt(self):
        node = FlowNode(tuple_for(2000), 1.0)
        node.append_packet(1.0, 4, Direction.CLIENT_TO_SERVER)
        node.append_packet(1.05, 16, Direction.SERVER_TO_CLIENT)
        assert node.estimate_rtt() == pytest.approx(0.05)

    def test_estimate_rtt_empty(self):
        assert FlowNode(tuple_for(2000), 1.0).estimate_rtt() == 0.0


class TestActiveFlowList:
    def test_insert_find(self):
        flows = ActiveFlowList()
        node = flows.insert(tuple_for(2000), 1.0)
        assert flows.find(tuple_for(2000).canonical()) is node
        assert len(flows) == 1

    def test_insertion_order_at_tail(self):
        flows = ActiveFlowList()
        for port in (2000, 2001, 2002):
            flows.insert(tuple_for(port), 1.0)
        ports = [node.client_tuple.src_port for node in flows]
        assert ports == [2000, 2001, 2002]

    def test_duplicate_insert_rejected(self):
        flows = ActiveFlowList()
        flows.insert(tuple_for(2000), 1.0)
        with pytest.raises(ValueError, match="already active"):
            flows.insert(tuple_for(2000), 2.0)

    def test_remove_middle(self):
        flows = ActiveFlowList()
        nodes = [flows.insert(tuple_for(p), 1.0) for p in (2000, 2001, 2002)]
        flows.remove(nodes[1])
        assert len(flows) == 2
        assert [n.client_tuple.src_port for n in flows] == [2000, 2002]
        assert flows.find(tuple_for(2001).canonical()) is None

    def test_remove_head_and_tail(self):
        flows = ActiveFlowList()
        nodes = [flows.insert(tuple_for(p), 1.0) for p in (2000, 2001)]
        flows.remove(nodes[0])
        assert [n.client_tuple.src_port for n in flows] == [2001]
        flows.remove(nodes[1])
        assert len(flows) == 0

    def test_double_remove_rejected(self):
        flows = ActiveFlowList()
        node = flows.insert(tuple_for(2000), 1.0)
        flows.remove(node)
        with pytest.raises(ValueError):
            flows.remove(node)

    def test_pop_all(self):
        flows = ActiveFlowList()
        for port in (2000, 2001):
            flows.insert(tuple_for(port), 1.0)
        popped = flows.pop_all()
        assert len(popped) == 2
        assert len(flows) == 0
