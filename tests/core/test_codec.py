"""Tests for the binary container codec."""

import pytest

from repro.core.codec import (
    LONG_PACKET_BYTES,
    TIME_SEQ_RECORD_BYTES,
    dataset_sizes,
    deserialize_compressed,
    serialize_compressed,
)
from repro.core.compressor import compress_trace
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CodecError

from tests.conftest import make_web_flow
from repro.trace.trace import Trace


def build_compressed() -> CompressedTrace:
    compressed = CompressedTrace(name="codec-test", original_packet_count=64)
    compressed.short_templates.append(ShortFlowTemplate((4, 16, 32, 52)))
    compressed.short_templates.append(ShortFlowTemplate((4, 16, 52)))
    compressed.long_templates.append(
        LongFlowTemplate(tuple([32] * 60), tuple([0.01] * 59 + [0.0]))
    )
    compressed.addresses.intern(0xC0A80001)
    compressed.addresses.intern(0x08080808)
    compressed.time_seq.append(
        TimeSeqRecord(0.0, DatasetId.SHORT, 0, 0, rtt=0.05)
    )
    compressed.time_seq.append(TimeSeqRecord(1.5, DatasetId.LONG, 0, 1))
    compressed.time_seq.append(
        TimeSeqRecord(2.25, DatasetId.SHORT, 1, 1, rtt=0.1)
    )
    return compressed


class TestRoundtrip:
    def test_full_roundtrip(self):
        original = build_compressed()
        restored = deserialize_compressed(serialize_compressed(original))
        assert restored.name == original.name
        assert restored.original_packet_count == 64
        assert [t.values for t in restored.short_templates] == [
            t.values for t in original.short_templates
        ]
        assert restored.long_templates[0].values == original.long_templates[0].values
        assert list(restored.addresses) == list(original.addresses)
        assert len(restored.time_seq) == 3

    def test_time_seq_fields_roundtrip(self):
        restored = deserialize_compressed(serialize_compressed(build_compressed()))
        record = restored.time_seq[1]
        assert record.dataset is DatasetId.LONG
        assert record.template_index == 0
        assert record.address_index == 1
        assert record.timestamp == pytest.approx(1.5, abs=1e-4)

    def test_rtt_precision(self):
        restored = deserialize_compressed(serialize_compressed(build_compressed()))
        assert restored.time_seq[0].rtt == pytest.approx(0.05, abs=1e-4)

    def test_gap_precision_100us(self):
        restored = deserialize_compressed(serialize_compressed(build_compressed()))
        assert restored.long_templates[0].gaps[0] == pytest.approx(0.01, abs=1e-4)

    def test_gap_saturation(self):
        compressed = CompressedTrace(name="sat")
        compressed.long_templates.append(
            LongFlowTemplate(tuple([32] * 51), tuple([100.0] * 50 + [0.0]))
        )
        compressed.addresses.intern(1)
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.LONG, 0, 0))
        restored = deserialize_compressed(serialize_compressed(compressed))
        # 100 s saturates the u16 gap at 6.5535 s.
        assert restored.long_templates[0].gaps[0] == pytest.approx(6.5535)

    def test_empty_container(self):
        compressed = CompressedTrace(name="empty")
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert restored.flow_count() == 0

    def test_real_compression_roundtrips(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert restored.flow_count() == compressed.flow_count()
        assert restored.template_counts() == compressed.template_counts()


class TestErrors:
    def test_bad_magic(self):
        data = serialize_compressed(build_compressed())
        with pytest.raises(CodecError, match="magic"):
            deserialize_compressed(b"XXXX" + data[4:])

    def test_bad_version(self):
        data = bytearray(serialize_compressed(build_compressed()))
        data[4] = 99
        with pytest.raises(CodecError, match="version"):
            deserialize_compressed(bytes(data))

    def test_truncated(self):
        data = serialize_compressed(build_compressed())
        with pytest.raises(CodecError, match="truncated"):
            deserialize_compressed(data[:-3])

    def test_trailing_garbage(self):
        data = serialize_compressed(build_compressed())
        with pytest.raises(CodecError, match="trailing"):
            deserialize_compressed(data + b"\x00")

    def test_empty_input(self):
        with pytest.raises(CodecError):
            deserialize_compressed(b"")


class TestSizes:
    def test_dataset_sizes_match_serialized_length(self):
        compressed = build_compressed()
        sizes = dataset_sizes(compressed)
        assert sizes["total"] == len(serialize_compressed(compressed))

    def test_time_seq_is_10_bytes_per_flow(self):
        compressed = build_compressed()
        sizes = dataset_sizes(compressed)
        assert TIME_SEQ_RECORD_BYTES == 10
        assert sizes["time_seq"] == 10 * 3

    def test_long_packet_cost(self):
        assert LONG_PACKET_BYTES == 3
        compressed = build_compressed()
        sizes = dataset_sizes(compressed)
        assert sizes["long_flows_template"] == 2 + 60 * 3

    def test_short_template_cost(self):
        sizes = dataset_sizes(build_compressed())
        assert sizes["short_flows_template"] == (1 + 4) + (1 + 3)

    def test_address_cost(self):
        sizes = dataset_sizes(build_compressed())
        assert sizes["address"] == 8
