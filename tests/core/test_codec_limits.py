"""Capacity-limit and quantization-edge tests for the container codec."""

import pytest

from repro.core.codec import (
    MAX_ADDRESS_INDEX,
    MAX_TEMPLATE_INDEX,
    quantize_gap,
    quantize_rtt,
    quantize_timestamp,
    serialize_compressed,
)
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CodecError


class TestQuantizers:
    def test_timestamp_resolution(self):
        assert quantize_timestamp(1.00004) == 10000  # rounds to 100 µs
        assert quantize_timestamp(1.00006) == 10001

    def test_timestamp_saturation(self):
        assert quantize_timestamp(1e9) == 0xFFFFFFFF

    def test_rtt_saturation(self):
        assert quantize_rtt(100.0) == 0xFFFF
        assert quantize_rtt(0.05) == 500

    def test_gap_saturation(self):
        assert quantize_gap(100.0) == 0xFFFF
        assert quantize_gap(0.0) == 0

    def test_zero_values(self):
        assert quantize_timestamp(0.0) == 0
        assert quantize_rtt(0.0) == 0


class TestCapacityLimits:
    def test_too_many_short_templates(self):
        compressed = CompressedTrace(name="big")
        compressed.short_templates = [
            ShortFlowTemplate((i % 256,)) for i in range(MAX_TEMPLATE_INDEX + 2)
        ]
        with pytest.raises(CodecError, match="too many short templates"):
            serialize_compressed(compressed)

    def test_template_index_cap_is_15_bits(self):
        assert MAX_TEMPLATE_INDEX == 0x7FFF

    def test_address_cap_is_16_bits(self):
        assert MAX_ADDRESS_INDEX == 0xFFFF

    def test_short_template_max_255_values(self):
        compressed = CompressedTrace(name="long-short")
        # 256-packet "short" template cannot be encoded with a u8 length.
        compressed.short_templates = [ShortFlowTemplate(tuple([1] * 256))]
        compressed.addresses.intern(1)
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.SHORT, 0, 0))
        with pytest.raises(CodecError, match="short template too long"):
            serialize_compressed(compressed)

    def test_at_the_255_boundary_works(self):
        compressed = CompressedTrace(name="boundary")
        compressed.short_templates = [ShortFlowTemplate(tuple([1] * 255))]
        compressed.addresses.intern(1)
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.SHORT, 0, 0))
        assert serialize_compressed(compressed)
