"""Unit: the streaming decompressor (bounded-memory replay engine)."""

import pytest

from repro.core.compressor import compress_trace
from repro.core.datasets import (
    AddressTable,
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.decompressor import DecompressorConfig, decompress_trace
from repro.core.replay import (
    StreamingDecompressor,
    iter_decompressed,
)
from repro.trace.tsh import write_tsh_bytes

from tests.conftest import make_timed_flows


def staggered_compressed(count: int = 40, spacing: float = 10.0) -> CompressedTrace:
    """Many identical flows, far apart in time: tiny concurrent fan-out."""
    return compress_trace(iter(make_timed_flows(count, spacing=spacing)))


class TestByteIdentity:
    def test_matches_batch_on_handmade_flows(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        batch = decompress_trace(compressed)
        streamed = list(StreamingDecompressor(compressed).packets())
        assert write_tsh_bytes(streamed) == write_tsh_bytes(batch.packets)

    def test_matches_batch_on_generated_trace(self, small_web_trace):
        compressed = compress_trace(small_web_trace)
        batch = decompress_trace(compressed)
        streamed = list(iter_decompressed(compressed))
        assert write_tsh_bytes(streamed) == write_tsh_bytes(batch.packets)

    def test_config_passes_through(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        config = DecompressorConfig(seed=99, default_rtt=0.2)
        batch = decompress_trace(compressed, config)
        streamed = list(iter_decompressed(compressed, config))
        assert write_tsh_bytes(streamed) == write_tsh_bytes(batch.packets)

    def test_long_flow_interleaving(self):
        """A long flow spanning many short flows must merge correctly."""
        compressed = CompressedTrace(name="t")
        compressed.short_templates.append(ShortFlowTemplate((4, 16, 32, 53)))
        values = tuple([32] * 60)
        gaps = tuple([1.0] * 59 + [0.0])
        compressed.long_templates.append(LongFlowTemplate(values, gaps))
        compressed.addresses.intern(0xC0A80050)
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.LONG, 0, 0))
        for start in range(1, 50):
            compressed.time_seq.append(
                TimeSeqRecord(float(start), DatasetId.SHORT, 0, 0, rtt=0.01)
            )
        batch = decompress_trace(compressed)
        streamed = list(iter_decompressed(compressed))
        assert write_tsh_bytes(streamed) == write_tsh_bytes(batch.packets)

    def test_same_timestamp_direction_flips_match_batch(self):
        """Zero-quantized gaps + dependent packets: the tie-reorder bug.

        A long flow whose stored gaps quantize to zero puts a dependent
        (direction-flipping) run of packets on a single timestamp.  The
        batch path's global sort reorders that tie by ``merge_sort_key``
        (direction flips change ``src_ip``/``src_port`` mid-tie), while
        a heap merge holding one packet per flow cannot.  Regression for
        the divergence the incast scenarios exposed: ``synthesize_flow``
        now reconciles ties at the source, so both paths agree.
        """
        compressed = CompressedTrace(name="t")
        values = tuple([32] * 8)  # g2=0 each: every packet flips direction
        gaps = tuple([0.0] * 8)
        compressed.long_templates.append(LongFlowTemplate(values, gaps))
        compressed.addresses.intern(0xC0A80050)
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.LONG, 0, 0))
        batch = decompress_trace(compressed)
        # The scenario really is one big timestamp tie with both
        # directions in it — the case the heap merge alone cannot order.
        assert len({p.timestamp for p in batch.packets}) == 1
        assert len({p.src_ip for p in batch.packets}) == 2
        streamed = list(StreamingDecompressor(compressed))
        assert streamed == batch.packets


class TestBoundedness:
    def test_peak_open_flows_tracks_fan_out_not_trace_length(self):
        compressed = staggered_compressed(count=40)
        engine = StreamingDecompressor(compressed)
        packets = sum(1 for _ in engine.packets())
        assert packets == compressed.packet_count()
        # Flows are 10 s apart and each lasts well under a second: the
        # merge should never hold more than a handful of open flows.
        assert engine.stats.peak_open_flows <= 3
        assert engine.stats.flows_replayed == compressed.flow_count()
        assert engine.stats.packets_emitted == packets

    def test_emission_is_lazy(self):
        compressed = staggered_compressed(count=40)
        engine = StreamingDecompressor(compressed)
        stream = engine.packets()
        for _ in range(5):
            next(stream)
        # Only the frontier's flows have been replayed so far.
        assert engine.stats.flows_replayed < compressed.flow_count()


class TestLifecycle:
    def test_each_packets_call_restarts(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        engine = StreamingDecompressor(compressed)
        first = list(engine.packets())
        second = list(engine.packets())
        assert write_tsh_bytes(first) == write_tsh_bytes(second)
        assert engine.stats.packets_emitted == len(second)

    def test_iter_protocol(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        assert len(list(StreamingDecompressor(compressed))) == len(
            decompress_trace(compressed)
        )

    def test_empty_container_yields_nothing(self):
        compressed = CompressedTrace(name="empty", addresses=AddressTable())
        assert list(iter_decompressed(compressed)) == []

    def test_name_mirrors_batch(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        engine = StreamingDecompressor(compressed)
        assert engine.name == decompress_trace(compressed).name

    def test_validates_on_construction(self):
        compressed = CompressedTrace(name="broken")
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.SHORT, 5, 0))
        with pytest.raises(ValueError):
            StreamingDecompressor(compressed)
