"""Tests for the online flow-clustering compressor (section 3)."""

import pytest

from repro.core.compressor import (
    CompressorConfig,
    FlowClusterCompressor,
    compress_trace,
)
from repro.core.datasets import DatasetId
from repro.core.errors import CompressionError
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_SYN
from repro.trace.trace import Trace

from tests.conftest import CLIENT_IP, SERVER_IP, make_web_flow


def compress_packets(packets, config=None):
    compressor = FlowClusterCompressor(config)
    for packet in sorted(packets, key=lambda p: p.timestamp):
        compressor.add_packet(packet)
    return compressor, compressor.finish()


class TestBasicCompression:
    def test_single_flow_one_template(self, web_flow_packets):
        compressor, compressed = compress_packets(web_flow_packets)
        assert len(compressed.short_templates) == 1
        assert len(compressed.time_seq) == 1
        assert compressed.time_seq[0].dataset is DatasetId.SHORT
        assert compressor.stats.flows_closed == 1

    def test_identical_flows_share_template(self):
        packets = []
        for index in range(30):
            packets.extend(
                make_web_flow(start=index * 1.0, client_port=2000 + index)
            )
        compressor, compressed = compress_packets(packets)
        assert len(compressed.short_templates) == 1
        assert len(compressed.time_seq) == 30
        assert compressor.stats.template_hits == 29
        assert compressor.stats.hit_ratio() == pytest.approx(29 / 30)

    def test_template_matches_characterization(self, web_flow_packets):
        _, compressed = compress_packets(web_flow_packets)
        assert compressed.short_templates[0].values == (
            4, 16, 32, 37, 34, 38, 32, 52,
        )

    def test_address_dataset_unique_destinations(self):
        packets = []
        for index in range(10):
            packets.extend(
                make_web_flow(
                    start=index * 1.0,
                    client_port=2000 + index,
                    server_ip=SERVER_IP + (index % 3),
                )
            )
        _, compressed = compress_packets(packets)
        assert len(compressed.addresses) == 3

    def test_timestamps_relative_to_trace_start(self):
        packets = make_web_flow(start=5000.0)
        _, compressed = compress_packets(packets)
        assert compressed.time_seq[0].timestamp == 0.0

    def test_rtt_recorded_for_short_flow(self, web_flow_packets):
        _, compressed = compress_packets(web_flow_packets)
        assert compressed.time_seq[0].rtt == pytest.approx(0.05, abs=1e-9)

    def test_original_packet_count(self, web_flow_packets):
        _, compressed = compress_packets(web_flow_packets)
        assert compressed.original_packet_count == len(web_flow_packets)


class TestShortLongSplit:
    def test_long_flow_goes_verbatim(self):
        # 60 same-direction packets then a FIN: a long flow.
        packets = [
            PacketRecord(
                float(i) * 0.01, CLIENT_IP, SERVER_IP, 2000, 80,
                flags=TCP_ACK, payload_len=1460,
            )
            for i in range(60)
        ]
        packets.append(
            PacketRecord(0.61, CLIENT_IP, SERVER_IP, 2000, 80, flags=0x11)
        )
        compressor, compressed = compress_packets(packets)
        assert compressor.stats.long_flows == 1
        assert len(compressed.long_templates) == 1
        assert compressed.long_templates[0].n == 61
        assert compressed.time_seq[0].dataset is DatasetId.LONG
        assert compressed.time_seq[0].rtt == 0.0  # not filled for long flows

    def test_long_template_keeps_inter_packet_times(self):
        packets = [
            PacketRecord(float(i) * 0.5, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK)
            for i in range(55)
        ]
        _, compressed = compress_packets(packets)
        template = compressed.long_templates[0]
        assert template.gaps[0] == pytest.approx(0.5)
        assert template.gaps[-1] == 0.0

    def test_cutoff_boundary(self):
        # Exactly 50 packets stays short; 51 goes long.
        def flow_of(n, port):
            return [
                PacketRecord(float(i) * 0.01, CLIENT_IP, SERVER_IP, port, 80, flags=TCP_ACK)
                for i in range(n)
            ]
        compressor, _ = compress_packets(flow_of(50, 2000))
        assert compressor.stats.short_flows == 1
        compressor, _ = compress_packets(flow_of(51, 2001))
        assert compressor.stats.long_flows == 1

    def test_custom_cutoff(self):
        packets = make_web_flow()  # 8 packets
        config = CompressorConfig(short_flow_max=5)
        compressor, _ = compress_packets(packets, config)
        assert compressor.stats.long_flows == 1


class TestSimilarityMerging:
    def test_similar_vectors_merge(self):
        # Two flows identical except one payload-class bit: distance 1 <
        # d_max = 8.
        a = make_web_flow(start=0.0, client_port=2000)
        b = make_web_flow(start=10.0, client_port=2001)
        _, compressed_exact = compress_packets(a + b)
        assert len(compressed_exact.short_templates) == 1

    def test_zero_percent_still_merges_exact(self):
        a = make_web_flow(start=0.0, client_port=2000)
        b = make_web_flow(start=10.0, client_port=2001)
        config = CompressorConfig(similarity_percent=0.0)
        _, compressed = compress_packets(a + b, config)
        assert len(compressed.short_templates) == 1

    def test_different_length_flows_never_merge(self):
        a = make_web_flow(start=0.0, client_port=2000, data_packets=2)
        b = make_web_flow(start=10.0, client_port=2001, data_packets=6)
        _, compressed = compress_packets(a + b)
        assert len(compressed.short_templates) == 2


class TestLifecycle:
    def test_add_after_finish_rejected(self, web_flow_packets):
        compressor, _ = compress_packets(web_flow_packets)
        with pytest.raises(CompressionError):
            compressor.add_packet(web_flow_packets[0])

    def test_finish_idempotent(self, web_flow_packets):
        compressor, compressed = compress_packets(web_flow_packets)
        assert compressor.finish() is compressed

    def test_unterminated_flow_flushed(self):
        packets = make_web_flow()[:-1]  # no FIN
        compressor, compressed = compress_packets(packets)
        assert compressor.stats.flows_closed == 1
        assert len(compressed.time_seq) == 1

    def test_idle_timeout_closes_flow(self):
        config = CompressorConfig(idle_timeout=5.0)
        compressor = FlowClusterCompressor(config)
        compressor.add_packet(
            PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_SYN)
        )
        compressor.add_packet(
            PacketRecord(100.0, CLIENT_IP, SERVER_IP, 2001, 80, flags=TCP_SYN)
        )
        assert compressor.stats.flows_closed == 1

    def test_compress_trace_wrapper(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        assert compressed.name == "multi-flow"
        assert compressed.flow_count() == 50


class TestConfigValidation:
    def test_bad_short_flow_max(self):
        with pytest.raises(ValueError):
            CompressorConfig(short_flow_max=0)

    def test_bad_idle_timeout(self):
        with pytest.raises(ValueError):
            CompressorConfig(idle_timeout=0.0)
