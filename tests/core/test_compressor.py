"""Tests for the online flow-clustering compressor (section 3)."""

import pytest

from repro.core.compressor import (
    CompressorConfig,
    FlowClusterCompressor,
    compress_trace,
)
from repro.core.datasets import DatasetId
from repro.core.errors import CompressionError
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_SYN
from repro.trace.trace import Trace

from tests.conftest import CLIENT_IP, SERVER_IP, make_web_flow


def compress_packets(packets, config=None):
    compressor = FlowClusterCompressor(config)
    for packet in sorted(packets, key=lambda p: p.timestamp):
        compressor.add_packet(packet)
    return compressor, compressor.finish()


class TestBasicCompression:
    def test_single_flow_one_template(self, web_flow_packets):
        compressor, compressed = compress_packets(web_flow_packets)
        assert len(compressed.short_templates) == 1
        assert len(compressed.time_seq) == 1
        assert compressed.time_seq[0].dataset is DatasetId.SHORT
        assert compressor.stats.flows_closed == 1

    def test_identical_flows_share_template(self):
        packets = []
        for index in range(30):
            packets.extend(
                make_web_flow(start=index * 1.0, client_port=2000 + index)
            )
        compressor, compressed = compress_packets(packets)
        assert len(compressed.short_templates) == 1
        assert len(compressed.time_seq) == 30
        assert compressor.stats.template_hits == 29
        assert compressor.stats.hit_ratio() == pytest.approx(29 / 30)

    def test_template_matches_characterization(self, web_flow_packets):
        _, compressed = compress_packets(web_flow_packets)
        assert compressed.short_templates[0].values == (
            4, 16, 32, 37, 34, 38, 32, 52,
        )

    def test_address_dataset_unique_destinations(self):
        packets = []
        for index in range(10):
            packets.extend(
                make_web_flow(
                    start=index * 1.0,
                    client_port=2000 + index,
                    server_ip=SERVER_IP + (index % 3),
                )
            )
        _, compressed = compress_packets(packets)
        assert len(compressed.addresses) == 3

    def test_timestamps_relative_to_trace_start(self):
        packets = make_web_flow(start=5000.0)
        _, compressed = compress_packets(packets)
        assert compressed.time_seq[0].timestamp == 0.0

    def test_rtt_recorded_for_short_flow(self, web_flow_packets):
        _, compressed = compress_packets(web_flow_packets)
        assert compressed.time_seq[0].rtt == pytest.approx(0.05, abs=1e-9)

    def test_original_packet_count(self, web_flow_packets):
        _, compressed = compress_packets(web_flow_packets)
        assert compressed.original_packet_count == len(web_flow_packets)


class TestShortLongSplit:
    def test_long_flow_goes_verbatim(self):
        # 60 same-direction packets then a FIN: a long flow.
        packets = [
            PacketRecord(
                float(i) * 0.01, CLIENT_IP, SERVER_IP, 2000, 80,
                flags=TCP_ACK, payload_len=1460,
            )
            for i in range(60)
        ]
        packets.append(
            PacketRecord(0.61, CLIENT_IP, SERVER_IP, 2000, 80, flags=0x11)
        )
        compressor, compressed = compress_packets(packets)
        assert compressor.stats.long_flows == 1
        assert len(compressed.long_templates) == 1
        assert compressed.long_templates[0].n == 61
        assert compressed.time_seq[0].dataset is DatasetId.LONG
        assert compressed.time_seq[0].rtt == 0.0  # not filled for long flows

    def test_long_template_keeps_inter_packet_times(self):
        packets = [
            PacketRecord(float(i) * 0.5, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK)
            for i in range(55)
        ]
        _, compressed = compress_packets(packets)
        template = compressed.long_templates[0]
        assert template.gaps[0] == pytest.approx(0.5)
        assert template.gaps[-1] == 0.0

    def test_cutoff_boundary(self):
        # Exactly 50 packets stays short; 51 goes long.
        def flow_of(n, port):
            return [
                PacketRecord(float(i) * 0.01, CLIENT_IP, SERVER_IP, port, 80, flags=TCP_ACK)
                for i in range(n)
            ]
        compressor, _ = compress_packets(flow_of(50, 2000))
        assert compressor.stats.short_flows == 1
        compressor, _ = compress_packets(flow_of(51, 2001))
        assert compressor.stats.long_flows == 1

    def test_custom_cutoff(self):
        packets = make_web_flow()  # 8 packets
        config = CompressorConfig(short_flow_max=5)
        compressor, _ = compress_packets(packets, config)
        assert compressor.stats.long_flows == 1


class TestSimilarityMerging:
    def test_similar_vectors_merge(self):
        # Two flows identical except one payload-class bit: distance 1 <
        # d_max = 8.
        a = make_web_flow(start=0.0, client_port=2000)
        b = make_web_flow(start=10.0, client_port=2001)
        _, compressed_exact = compress_packets(a + b)
        assert len(compressed_exact.short_templates) == 1

    def test_zero_percent_still_merges_exact(self):
        a = make_web_flow(start=0.0, client_port=2000)
        b = make_web_flow(start=10.0, client_port=2001)
        config = CompressorConfig(similarity_percent=0.0)
        _, compressed = compress_packets(a + b, config)
        assert len(compressed.short_templates) == 1

    def test_different_length_flows_never_merge(self):
        a = make_web_flow(start=0.0, client_port=2000, data_packets=2)
        b = make_web_flow(start=10.0, client_port=2001, data_packets=6)
        _, compressed = compress_packets(a + b)
        assert len(compressed.short_templates) == 2


class TestLifecycle:
    def test_add_after_finish_rejected(self, web_flow_packets):
        compressor, _ = compress_packets(web_flow_packets)
        with pytest.raises(CompressionError):
            compressor.add_packet(web_flow_packets[0])

    def test_finish_idempotent(self, web_flow_packets):
        compressor, compressed = compress_packets(web_flow_packets)
        assert compressor.finish() is compressed

    def test_unterminated_flow_flushed(self):
        packets = make_web_flow()[:-1]  # no FIN
        compressor, compressed = compress_packets(packets)
        assert compressor.stats.flows_closed == 1
        assert len(compressed.time_seq) == 1

    def test_idle_timeout_closes_flow(self):
        config = CompressorConfig(idle_timeout=5.0)
        compressor = FlowClusterCompressor(config)
        compressor.add_packet(
            PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_SYN)
        )
        compressor.add_packet(
            PacketRecord(100.0, CLIENT_IP, SERVER_IP, 2001, 80, flags=TCP_SYN)
        )
        assert compressor.stats.flows_closed == 1

    def test_compress_trace_wrapper(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        assert compressed.name == "multi-flow"
        assert compressed.flow_count() == 50


class TestConfigValidation:
    def test_bad_short_flow_max(self):
        with pytest.raises(ValueError):
            CompressorConfig(short_flow_max=0)

    def test_bad_idle_timeout(self):
        with pytest.raises(ValueError):
            CompressorConfig(idle_timeout=0.0)


class TestBaseTimeAnchor:
    """Regression: the time-seq base must be the *earliest* timestamp.

    A mildly out-of-order trace whose first-seen packet is not the
    earliest used to clamp earlier flows' offsets to 0.0, collapsing
    distinct start times and reordering flows on decompression.
    """

    @staticmethod
    def _jittered_packets():
        # Flow A is seen first (t=1.0) but flow B actually started
        # earlier (t=0.98) and its opener arrives late.
        flow_a = make_web_flow(start=1.0, client_port=2000)
        flow_b = make_web_flow(start=0.98, client_port=2001)
        packets = flow_a[:1] + flow_b[:1] + sorted(
            flow_a[1:] + flow_b[1:], key=lambda p: p.timestamp
        )
        return packets

    def test_offsets_anchor_on_earliest_timestamp(self):
        compressor = FlowClusterCompressor()
        for packet in self._jittered_packets():
            compressor.add_packet(packet)
        compressed = compressor.finish()
        offsets = sorted(record.timestamp for record in compressed.time_seq)
        assert offsets == pytest.approx([0.0, 0.02])

    def test_no_negative_clamp_collapse(self):
        """Distinct start times must stay distinct (the old clamp merged
        them at 0.0 and the decompressor reordered the flows)."""
        compressor = FlowClusterCompressor()
        for packet in self._jittered_packets():
            compressor.add_packet(packet)
        compressed = compressor.finish()
        timestamps = [record.timestamp for record in compressed.time_seq]
        assert len(set(timestamps)) == len(timestamps)

    def test_explicit_base_still_authoritative(self):
        """An externally supplied base (archive epoch) must not move."""
        compressor = FlowClusterCompressor(base_time=1.0)
        for packet in self._jittered_packets():
            compressor.add_packet(packet)
        compressed = compressor.finish()
        # The flow that started before the epoch clamps to it.
        assert min(r.timestamp for r in compressed.time_seq) == 0.0

    def test_streaming_matches_batch_on_jitter(self):
        from repro.core.codec import serialize_compressed
        from repro.core.streaming import StreamingCompressor

        packets = self._jittered_packets()
        _, batch = compress_packets_in_order(packets)
        streaming = StreamingCompressor()
        for start in range(0, len(packets), 3):
            streaming.feed(packets[start : start + 3])
        assert serialize_compressed(streaming.finish()) == serialize_compressed(
            batch
        )

    def test_rebase_shifts_already_closed_flows(self):
        """A flow closed *before* the earlier timestamp shows up must be
        shifted retroactively."""
        config = CompressorConfig()
        compressor = FlowClusterCompressor(config)
        for packet in make_web_flow(start=5.0, client_port=2000):
            compressor.add_packet(packet)  # closes via FIN at base 5.0
        assert compressor.output.time_seq[0].timestamp == 0.0
        for packet in make_web_flow(start=4.5, client_port=2001):
            compressor.add_packet(packet)
        compressed = compressor.finish()
        offsets = sorted(record.timestamp for record in compressed.time_seq)
        assert offsets == pytest.approx([0.0, 0.5])


class TestIdleEvictionBoundary:
    """Regression: a flow is active at the moment its own packet arrives.

    Eviction used to run before the incoming packet was appended, so a
    flow whose next packet arrived just past ``idle_timeout`` was closed
    and split in two even though the packet proves it alive at ``now``.
    """

    @staticmethod
    def _boundary_packets(gap: float):
        return [
            PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_SYN),
            PacketRecord(gap, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK),
        ]

    def test_own_packet_does_not_split_flow(self):
        config = CompressorConfig(idle_timeout=10.0)
        compressor = FlowClusterCompressor(config)
        for packet in self._boundary_packets(10.5):
            compressor.add_packet(packet)
        compressed = compressor.finish()
        assert compressed.flow_count() == 1
        assert compressed.short_templates[0].n == 2

    def test_other_flows_still_evicted_at_boundary(self):
        config = CompressorConfig(idle_timeout=10.0)
        compressor = FlowClusterCompressor(config)
        compressor.add_packet(
            PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2001, 80, flags=TCP_SYN)
        )
        for packet in self._boundary_packets(10.5):
            compressor.add_packet(packet)
        # The silent flow 2001 is closed by flow 2000's late packet; flow
        # 2000 itself stays open (its packet *is* the clock tick).
        assert compressor.stats.flows_closed == 1
        assert compressor.active_flows == 1

    def test_streaming_matches_batch_at_boundary(self):
        from repro.core.codec import serialize_compressed
        from repro.core.streaming import StreamingCompressor

        config = CompressorConfig(idle_timeout=10.0)
        packets = [
            PacketRecord(0.0, CLIENT_IP, SERVER_IP, 2001, 80, flags=TCP_SYN),
            *self._boundary_packets(10.5),
            PacketRecord(30.0, CLIENT_IP, SERVER_IP, 2000, 80, flags=TCP_ACK),
        ]
        _, batch = compress_packets_in_order(packets, config)
        for chunk in (1, 2, 4):
            streaming = StreamingCompressor(config)
            for start in range(0, len(packets), chunk):
                streaming.feed(packets[start : start + chunk])
            assert serialize_compressed(
                streaming.finish()
            ) == serialize_compressed(batch)


def compress_packets_in_order(packets, config=None):
    """Like :func:`compress_packets` but preserving arrival order."""
    compressor = FlowClusterCompressor(config)
    for packet in packets:
        compressor.add_packet(packet)
    return compressor, compressor.finish()
