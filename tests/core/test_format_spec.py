"""Conformance: docs/FORMAT.md's example hexdumps decode as specified.

The spec's two annotated ``.fctc`` dumps (v1 and v2) are extracted from
the document itself and decoded through the real codec; the decoded
datasets are checked field by field against what the prose promises,
and re-serializing them must reproduce the documented bytes exactly.
The spec therefore cannot drift from the implementation without a test
failure.
"""

import re
from pathlib import Path

import pytest

from repro.core.codec import (
    VERSION_V1,
    VERSION_V2,
    deserialize_compressed,
    serialize_compressed,
    serialize_compressed_v1,
)
from repro.core.datasets import DatasetId

FORMAT_MD = Path(__file__).resolve().parents[2] / "docs" / "FORMAT.md"

_DUMP_LINE = re.compile(r"^([0-9a-f]{4}):((?:\s+[0-9a-f]{2})+)", re.MULTILINE)


def spec_hexdumps() -> list[bytes]:
    """All fenced ``hexdump`` blocks in FORMAT.md, as byte strings.

    Each dump line is ``OFFS: hh hh ...  # annotation``; the stated
    offsets are verified against the accumulated byte count so the doc
    cannot even misnumber its own lines.
    """
    text = FORMAT_MD.read_text(encoding="utf-8")
    dumps = []
    for block in re.findall(r"```hexdump\n(.*?)```", text, re.DOTALL):
        data = bytearray()
        for match in _DUMP_LINE.finditer(block):
            offset = int(match.group(1), 16)
            assert offset == len(data), (
                f"hexdump offset {offset:#06x} disagrees with "
                f"accumulated length {len(data):#06x}"
            )
            data.extend(int(pair, 16) for pair in match.group(2).split())
        dumps.append(bytes(data))
    return dumps


@pytest.fixture(scope="module")
def dumps():
    found = spec_hexdumps()
    assert len(found) == 2, "FORMAT.md must carry the v1 and v2 examples"
    return found


class TestSpecExamples:
    def test_documented_sizes(self, dumps):
        v1, v2 = dumps
        assert len(v1) == 72
        assert len(v2) == 108
        assert len(v2) == len(v1) + 36  # four 9-byte section tags

    def test_version_bytes(self, dumps):
        v1, v2 = dumps
        assert v1[:4] == b"FCTC" and v2[:4] == b"FCTC"
        assert v1[4] == VERSION_V1
        assert v2[4] == VERSION_V2

    @pytest.mark.parametrize("index", [0, 1])
    def test_decodes_to_the_documented_datasets(self, dumps, index):
        decoded = deserialize_compressed(dumps[index])
        assert decoded.name == "spec"
        assert decoded.original_packet_count == 5
        assert len(decoded.short_templates) == 1
        assert decoded.short_templates[0].values == (4, 16, 52)
        assert len(decoded.long_templates) == 1
        assert decoded.long_templates[0].values == (32, 32)
        assert decoded.long_templates[0].gaps == pytest.approx((0.001, 0.0))
        assert list(decoded.addresses) == [0xC0A80001, 0x08080808]
        first, second = decoded.time_seq
        assert first.dataset is DatasetId.SHORT
        assert first.template_index == 0
        assert first.address_index == 0
        assert first.timestamp == pytest.approx(0.02)
        assert first.rtt == pytest.approx(0.003)
        assert second.dataset is DatasetId.LONG
        assert second.template_index == 0
        assert second.address_index == 1
        assert second.timestamp == pytest.approx(1.5)
        assert second.rtt == 0.0

    def test_both_generations_carry_identical_datasets(self, dumps):
        v1, v2 = dumps
        assert serialize_compressed_v1(
            deserialize_compressed(v2)
        ) == serialize_compressed_v1(deserialize_compressed(v1))

    def test_reserializing_reproduces_the_spec_bytes(self, dumps):
        v1, v2 = dumps
        decoded = deserialize_compressed(v1)
        assert serialize_compressed_v1(decoded) == v1
        assert serialize_compressed(decoded) == v2
