"""StreamingCompressor.flush_segment — the rotate-without-finish primitive."""

from __future__ import annotations

import pytest

from repro.core.compressor import FlowClusterCompressor
from repro.core.streaming import StreamingCompressor
from repro.synth import generate_web_trace


@pytest.fixture(scope="module")
def packets():
    return list(generate_web_trace(duration=4.0, flow_rate=25.0, seed=3))


class TestFlushSegment:
    def test_empty_flush_returns_none_and_keeps_accepting(self, packets):
        compressor = StreamingCompressor()
        assert compressor.flush_segment() is None
        assert compressor.segments_flushed == 0
        compressor.feed(packets[:5])  # the engine swap left a live feed path
        assert compressor.flush_segment() is not None
        assert compressor.segments_flushed == 1

    def test_segments_match_independent_compressions(self, packets):
        """Each inter-flush run compresses exactly as its own batch
        would on the shared base_time — the archive-identity invariant."""
        split = len(packets) // 2
        compressor = StreamingCompressor()
        compressor.feed(packets[:split])
        first = compressor.flush_segment(name="part-0")
        compressor.feed(packets[split:])
        second = compressor.flush_segment(name="part-1")

        base = packets[0].timestamp

        def batch(run, name):
            compressor = FlowClusterCompressor(name=name, base_time=base)
            for packet in run:
                compressor.add_packet(packet)
            return compressor.finish()

        def alike(sealed, expected):
            assert sealed.name == expected.name
            assert sealed.short_templates == expected.short_templates
            assert sealed.long_templates == expected.long_templates
            assert sealed.time_seq == expected.time_seq
            assert sealed.addresses.addresses() == expected.addresses.addresses()
            assert sealed.original_packet_count == expected.original_packet_count

        alike(first, batch(packets[:split], "part-0"))
        alike(second, batch(packets[split:], "part-1"))

    def test_base_time_carries_across_flushes(self, packets):
        compressor = StreamingCompressor()
        compressor.feed(packets[:10])
        base = compressor.base_time
        compressor.flush_segment()
        assert compressor.base_time == base  # fresh engine, same clock
        compressor.feed(packets[10:20])
        assert compressor.base_time == base

    def test_flush_then_finish_counts_everything_once(self, packets):
        compressor = StreamingCompressor()
        compressor.feed(packets)
        compressor.flush_segment()
        trailing = compressor.finish()
        assert not trailing.time_seq  # nothing fed since the flush
        assert compressor.streaming_stats.packets_fed == len(packets)

    def test_default_name_gains_running_ordinal(self, packets):
        compressor = StreamingCompressor(name="live")
        compressor.feed(packets[:10])
        first = compressor.flush_segment()
        compressor.feed(packets[10:20])
        second = compressor.flush_segment(name="explicit")
        assert first.name == "live"
        assert second.name == "explicit"
        assert compressor.segments_flushed == 2
