"""Tests for the template-based trace generator (future work E9)."""

import pytest

from repro.core.compressor import compress_trace
from repro.core.datasets import CompressedTrace, DatasetId
from repro.core.generator import TraceModel
from repro.trace.stats import compute_statistics


@pytest.fixture(scope="module")
def fitted_model(small_web_trace):
    return TraceModel.fit(compress_trace(small_web_trace))


class TestFit:
    def test_usage_counts_sum_to_flows(self, small_web_trace, fitted_model):
        compressed = compress_trace(small_web_trace)
        total = sum(fitted_model.short_usage) + sum(fitted_model.long_usage)
        assert total == compressed.flow_count()

    def test_arrival_rate_positive(self, fitted_model):
        assert fitted_model.arrival_rate > 0

    def test_rtt_samples_collected(self, fitted_model):
        assert fitted_model.rtt_samples
        assert all(rtt > 0 for rtt in fitted_model.rtt_samples)

    def test_long_fraction_in_range(self, fitted_model):
        assert 0.0 <= fitted_model.long_fraction < 0.2

    def test_expected_packets_matches_source(self, small_web_trace, fitted_model):
        stats = compute_statistics(small_web_trace)
        assert fitted_model.expected_packets_per_flow() == pytest.approx(
            stats.length_distribution.mean_length(), rel=0.05
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TraceModel.fit(CompressedTrace())


class TestSynthesizeDatasets:
    def test_flow_count(self, fitted_model):
        datasets = fitted_model.synthesize_datasets(flow_count=123, seed=3)
        assert datasets.flow_count() == 123
        datasets.validate()

    def test_zero_flows(self, fitted_model):
        datasets = fitted_model.synthesize_datasets(flow_count=0)
        assert datasets.flow_count() == 0

    def test_negative_rejected(self, fitted_model):
        with pytest.raises(ValueError):
            fitted_model.synthesize_datasets(flow_count=-1)

    def test_deterministic(self, fitted_model):
        a = fitted_model.synthesize_datasets(50, seed=9)
        b = fitted_model.synthesize_datasets(50, seed=9)
        assert [r.template_index for r in a.time_seq] == [
            r.template_index for r in b.time_seq
        ]

    def test_timestamps_increase(self, fitted_model):
        datasets = fitted_model.synthesize_datasets(100, seed=4)
        stamps = [r.timestamp for r in datasets.time_seq]
        assert stamps == sorted(stamps)

    def test_short_records_carry_rtt(self, fitted_model):
        datasets = fitted_model.synthesize_datasets(200, seed=5)
        short = [r for r in datasets.time_seq if r.dataset is DatasetId.SHORT]
        assert short
        assert all(r.rtt > 0 for r in short)


class TestSynthesizeTrace:
    def test_statistics_preserved(self, small_web_trace, fitted_model):
        compressed = compress_trace(small_web_trace)
        synthetic = fitted_model.synthesize(
            flow_count=compressed.flow_count(), seed=11
        )
        original = compute_statistics(small_web_trace)
        restored = compute_statistics(synthetic)
        assert restored.length_distribution.mean_length() == pytest.approx(
            original.length_distribution.mean_length(), rel=0.25
        )
        assert restored.short_flow_fraction == pytest.approx(
            original.short_flow_fraction, abs=0.06
        )

    def test_scale_up(self, fitted_model):
        small = fitted_model.synthesize(flow_count=50, seed=2)
        large = fitted_model.synthesize(flow_count=200, seed=2)
        assert len(large) > 3 * len(small)

    def test_destinations_from_address_dataset(self, fitted_model):
        synthetic = fitted_model.synthesize(flow_count=40, seed=6)
        model_addresses = set(fitted_model.addresses)
        trace_destinations = {p.dst_ip for p in synthetic.packets} | {
            p.src_ip for p in synthetic.packets
        }
        assert model_addresses & trace_destinations
