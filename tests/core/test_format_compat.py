"""Format v1 compatibility: pre-PR fixtures must keep decoding exactly.

``tests/fixtures/v1.fctc`` and ``tests/fixtures/v1.fctca`` were written
by the codebase *before* the backend layer existed (untagged ``.fctc``
version byte 2, ``.fctca`` version 1) from the deterministic workload
regenerated below.  The v2 reader must decode them byte-identically —
re-serializing the decoded datasets through the legacy layout must
reproduce the fixture bytes bit for bit.
"""

from pathlib import Path

import pytest

from repro.archive import (
    ARCHIVE_VERSION_V1,
    ARCHIVE_VERSION_V2,
    RAW_SECTION_BACKENDS,
    ArchiveReader,
    ArchiveWriter,
)
from repro.core.codec import (
    VERSION_V1,
    VERSION_V2,
    deserialize_compressed,
    serialize_compressed,
    serialize_compressed_v1,
)
from repro.core.compressor import compress_trace
from repro.core.errors import ArchiveError, CodecError
from repro.synth import generate_web_trace

FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"

# The exact workload the fixtures were generated from (see module doc).
FIXTURE_DURATION = 6.0
FIXTURE_RATE = 20.0
FIXTURE_SEED = 7


@pytest.fixture(scope="module")
def fixture_trace():
    return generate_web_trace(
        duration=FIXTURE_DURATION, flow_rate=FIXTURE_RATE, seed=FIXTURE_SEED
    )


class TestFctcV1:
    def test_version_bytes(self):
        data = (FIXTURES / "v1.fctc").read_bytes()
        assert data[:4] == b"FCTC"
        assert data[4] == VERSION_V1

    def test_decodes_byte_identically(self):
        data = (FIXTURES / "v1.fctc").read_bytes()
        decoded = deserialize_compressed(data)
        # Lossless read: the legacy serialization of what we decoded is
        # the fixture, byte for byte.
        assert serialize_compressed_v1(decoded) == data

    def test_matches_fresh_compression(self, fixture_trace):
        data = (FIXTURES / "v1.fctc").read_bytes()
        fresh = compress_trace(fixture_trace)
        assert serialize_compressed_v1(fresh) == data

    def test_v1_and_v2_decode_to_the_same_datasets(self, fixture_trace):
        v1 = (FIXTURES / "v1.fctc").read_bytes()
        fresh = compress_trace(fixture_trace)
        v2 = serialize_compressed(fresh)  # default raw, tagged
        assert v2[4] == VERSION_V2
        assert serialize_compressed_v1(
            deserialize_compressed(v2)
        ) == serialize_compressed_v1(deserialize_compressed(v1))
        # v2's only cost over v1 is the fixed section-tag framing.
        assert len(v2) == len(v1) + 4 * 9

    def test_unsupported_version_rejected(self):
        data = bytearray((FIXTURES / "v1.fctc").read_bytes())
        data[4] = 9
        with pytest.raises(CodecError, match="unsupported version"):
            deserialize_compressed(bytes(data))


class TestFctcaV1:
    def test_reader_reports_v1(self):
        with ArchiveReader(FIXTURES / "v1.fctca") as reader:
            assert reader.version == ARCHIVE_VERSION_V1
            assert reader.segment_count == 6
            assert all(
                entry.section_backends == RAW_SECTION_BACKENDS
                for entry in reader.entries
            )

    def test_segments_decode_byte_identically(self):
        with ArchiveReader(FIXTURES / "v1.fctca") as reader:
            for index in range(reader.segment_count):
                raw = reader.read_segment_bytes(index)
                assert serialize_compressed_v1(reader.load_segment(index)) == raw

    def test_unsupported_archive_version_rejected(self, tmp_path):
        data = bytearray((FIXTURES / "v1.fctca").read_bytes())
        data[4] = 9
        bad = tmp_path / "bad.fctca"
        bad.write_bytes(bytes(data))
        with pytest.raises(ArchiveError, match="unsupported archive version"):
            ArchiveReader(bad)


class TestAppendUpgradesV1:
    @pytest.fixture
    def upgraded(self, tmp_path):
        path = tmp_path / "upgrade.fctca"
        path.write_bytes((FIXTURES / "v1.fctca").read_bytes())
        extra = generate_web_trace(duration=2.0, flow_rate=20.0, seed=11)
        with ArchiveWriter.append(
            path, segment_span=1.0, backend="zlib"
        ) as writer:
            writer.feed(extra.packets)
        return path

    def test_header_and_footer_become_v2(self, upgraded):
        with ArchiveReader(upgraded) as reader:
            assert reader.version == ARCHIVE_VERSION_V2
            assert reader.segment_count > 6

    def test_old_segment_bytes_untouched(self, upgraded):
        original = (FIXTURES / "v1.fctca").read_bytes()
        with ArchiveReader(FIXTURES / "v1.fctca") as v1_reader, ArchiveReader(
            upgraded
        ) as reader:
            for index, v1_entry in enumerate(v1_reader.entries):
                entry = reader.entries[index]
                assert (entry.offset, entry.length) == (
                    v1_entry.offset,
                    v1_entry.length,
                )
                assert entry.section_backends == RAW_SECTION_BACKENDS
                assert (
                    reader.read_segment_bytes(index)
                    == original[v1_entry.offset : v1_entry.offset + v1_entry.length]
                )

    def test_new_segments_carry_backend_tags(self, upgraded):
        from repro.core.backends import get_backend

        zlib_tag = get_backend("zlib").tag
        with ArchiveReader(upgraded) as reader:
            new_entries = reader.entries[6:]
            assert new_entries
            for entry in new_entries:
                assert set(entry.section_backends) == {zlib_tag}

    def test_every_segment_still_decodes(self, upgraded):
        with ArchiveReader(upgraded) as reader:
            for _index, segment in reader.iter_segments():
                assert segment.time_seq
