"""Codec boundary conditions: empties, exact capacity limits, saturation.

Complements ``test_codec_limits.py`` (which checks the over-limit
rejections) with the *at*-limit acceptance cases and full round-trips of
the quantizers' saturating values.
"""

import io

import pytest

from repro.core.codec import (
    MAX_ADDRESS_INDEX,
    MAX_TEMPLATE_INDEX,
    deserialize_compressed,
    read_compressed,
    serialize_compressed,
    write_compressed,
)
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.errors import CodecError


class TestEmptyTrace:
    def test_empty_roundtrip(self):
        empty = CompressedTrace(name="nothing")
        restored = deserialize_compressed(serialize_compressed(empty))
        assert restored.name == "nothing"
        assert restored.flow_count() == 0
        assert restored.template_counts() == (0, 0)
        assert len(restored.addresses) == 0
        assert restored.original_packet_count == 0

    def test_empty_with_empty_name(self):
        restored = deserialize_compressed(
            serialize_compressed(CompressedTrace(name=""))
        )
        assert restored.name == ""


def _dense_trace(short_count: int = 1, address_count: int = 1) -> CompressedTrace:
    compressed = CompressedTrace(name="limits")
    compressed.short_templates = [
        ShortFlowTemplate((i % 256,)) for i in range(short_count)
    ]
    for address in range(address_count):
        compressed.addresses.intern(address)
    compressed.time_seq.append(
        TimeSeqRecord(0.0, DatasetId.SHORT, short_count - 1, address_count - 1)
    )
    return compressed


class TestExactCapacityLimits:
    def test_exactly_32768_short_templates_roundtrip(self):
        compressed = _dense_trace(short_count=MAX_TEMPLATE_INDEX + 1)
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert len(restored.short_templates) == 32768
        assert restored.time_seq[0].template_index == MAX_TEMPLATE_INDEX

    def test_exactly_32768_long_templates_roundtrip(self):
        compressed = CompressedTrace(name="long-limit")
        compressed.long_templates = [
            LongFlowTemplate((i % 256,), (0.0,)) for i in range(MAX_TEMPLATE_INDEX + 1)
        ]
        compressed.addresses.intern(1)
        compressed.time_seq.append(
            TimeSeqRecord(0.0, DatasetId.LONG, MAX_TEMPLATE_INDEX, 0)
        )
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert len(restored.long_templates) == 32768
        assert restored.time_seq[0].dataset is DatasetId.LONG
        assert restored.time_seq[0].template_index == MAX_TEMPLATE_INDEX

    def test_32769_long_templates_rejected(self):
        compressed = CompressedTrace(name="long-over")
        compressed.long_templates = [
            LongFlowTemplate((i % 256,), (0.0,)) for i in range(MAX_TEMPLATE_INDEX + 2)
        ]
        with pytest.raises(CodecError, match="too many long templates"):
            serialize_compressed(compressed)

    def test_exactly_65536_addresses_roundtrip(self):
        compressed = _dense_trace(address_count=MAX_ADDRESS_INDEX + 1)
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert len(restored.addresses) == 65536
        assert restored.time_seq[0].address_index == MAX_ADDRESS_INDEX
        assert restored.addresses.lookup(MAX_ADDRESS_INDEX) == MAX_ADDRESS_INDEX

    def test_65537_addresses_rejected(self):
        compressed = _dense_trace(address_count=MAX_ADDRESS_INDEX + 2)
        with pytest.raises(CodecError, match="too many addresses"):
            serialize_compressed(compressed)


class TestSaturationRoundtrip:
    def test_timestamp_saturates_to_u32_ceiling(self):
        compressed = _dense_trace()
        compressed.time_seq[0] = TimeSeqRecord(1e9, DatasetId.SHORT, 0, 0)
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert restored.time_seq[0].timestamp == 0xFFFFFFFF / 10_000

    def test_rtt_saturates_to_u16_ceiling(self):
        compressed = _dense_trace()
        compressed.time_seq[0] = TimeSeqRecord(0.0, DatasetId.SHORT, 0, 0, rtt=100.0)
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert restored.time_seq[0].rtt == 0xFFFF / 10_000

    def test_gap_saturates_to_u16_ceiling(self):
        compressed = CompressedTrace(name="gaps")
        compressed.long_templates = [LongFlowTemplate((1, 2), (100.0, 0.0))]
        compressed.addresses.intern(1)
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.LONG, 0, 0))
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert restored.long_templates[0].gaps[0] == 0xFFFF / 10_000

    def test_sub_resolution_values_quantize_to_grid(self):
        compressed = _dense_trace()
        compressed.time_seq[0] = TimeSeqRecord(
            1.00004, DatasetId.SHORT, 0, 0, rtt=0.00006
        )
        restored = deserialize_compressed(serialize_compressed(compressed))
        assert restored.time_seq[0].timestamp == 1.0
        assert restored.time_seq[0].rtt == 0.0001


class TestStreamForms:
    def test_write_read_compressed_back_to_back(self):
        first = _dense_trace()
        second = CompressedTrace(name="second")
        stream = io.BytesIO()
        written = write_compressed(stream, first)
        assert written == stream.tell()
        write_compressed(stream, second)
        stream.seek(0)
        assert read_compressed(stream).name == "limits"
        assert read_compressed(stream).name == "second"
        assert not stream.read()  # both containers consumed exactly

    def test_deserialize_still_rejects_trailing_bytes(self):
        data = serialize_compressed(_dense_trace()) + b"\x00"
        with pytest.raises(CodecError, match="trailing"):
            deserialize_compressed(data)
