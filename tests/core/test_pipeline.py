"""Tests for the end-to-end pipeline and ratio accounting."""

import pytest

from repro.core.pipeline import (
    compress_to_bytes,
    decompress_from_bytes,
    report_for,
    roundtrip,
)
from repro.trace.trace import Trace


class TestRoundtrip:
    def test_packet_count_preserved(self, multi_flow_trace):
        decompressed, report = roundtrip(multi_flow_trace)
        assert len(decompressed) == len(multi_flow_trace)
        assert report.packet_count == len(multi_flow_trace)

    def test_ratio_small_for_redundant_trace(self, multi_flow_trace):
        _, report = roundtrip(multi_flow_trace)
        # Fifty near-identical flows compress extremely well.
        assert report.ratio < 0.10
        assert report.ratio_percent == pytest.approx(100 * report.ratio)

    def test_report_fields(self, multi_flow_trace):
        _, report = roundtrip(multi_flow_trace)
        assert report.flow_count == 50
        assert report.short_templates >= 1
        assert report.original_bytes == multi_flow_trace.stored_size_bytes()
        assert report.dataset_bytes["total"] == report.compressed_bytes

    def test_summary_lines(self, multi_flow_trace):
        _, report = roundtrip(multi_flow_trace)
        text = "\n".join(report.summary_lines())
        assert "ratio" in text
        assert "paper: ~3%" in text

    def test_generated_trace_ratio_in_paper_band(self, small_web_trace):
        _, report = roundtrip(small_web_trace)
        # "around 3%" — we accept 2-6% for a 10s sample.
        assert 0.02 < report.ratio < 0.06

    def test_empty_trace(self):
        decompressed, report = roundtrip(Trace(name="empty"))
        assert len(decompressed) == 0
        assert report.ratio == 0.0


class TestBytesApi:
    def test_compress_decompress_bytes(self, multi_flow_trace):
        data, compressed = compress_to_bytes(multi_flow_trace)
        assert isinstance(data, bytes)
        assert compressed.flow_count() == 50
        decompressed = decompress_from_bytes(data)
        assert len(decompressed) == len(multi_flow_trace)

    def test_report_for_consistency(self, multi_flow_trace):
        data, compressed = compress_to_bytes(multi_flow_trace)
        report = report_for(multi_flow_trace, compressed, data)
        assert report.compressed_bytes == len(data)
