"""Tests for the decompression algorithm (section 4)."""

import pytest

from repro.core.compressor import compress_trace
from repro.core.datasets import (
    AddressTable,
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.core.decompressor import (
    CLIENT_PORT_MAX,
    CLIENT_PORT_MIN,
    SERVER_PORT,
    DecompressorConfig,
    decompress_trace,
)
from repro.flows.assembler import assemble_flows
from repro.flows.characterize import characterize_flow
from repro.net.ip import address_class
from repro.trace.trace import Trace

from tests.conftest import make_web_flow


def simple_compressed() -> CompressedTrace:
    compressed = CompressedTrace(name="t")
    # SYN, SYN+ACK, ACK, FIN — a canonical 4-packet template.
    compressed.short_templates.append(ShortFlowTemplate((4, 16, 32, 53)))
    compressed.addresses.intern(0xC0A80050)
    compressed.time_seq.append(
        TimeSeqRecord(0.0, DatasetId.SHORT, 0, 0, rtt=0.040)
    )
    return compressed


class TestReconstruction:
    def test_packet_count(self):
        trace = decompress_trace(simple_compressed())
        assert len(trace) == 4

    def test_flags_follow_template(self):
        trace = decompress_trace(simple_compressed())
        classes = [p.flag_class() for p in trace.packets]
        assert classes == [0, 1, 2, 3]

    def test_server_address_from_dataset(self):
        trace = decompress_trace(simple_compressed())
        assert trace[0].dst_ip == 0xC0A80050  # client -> server

    def test_source_is_class_b_or_c(self):
        trace = decompress_trace(simple_compressed())
        assert address_class(trace[0].src_ip) in {"B", "C"}

    def test_ports_follow_paper_rules(self):
        trace = decompress_trace(simple_compressed())
        assert trace[0].dst_port == SERVER_PORT
        assert CLIENT_PORT_MIN <= trace[0].src_port <= CLIENT_PORT_MAX

    def test_rtt_drives_dependent_packet_timing(self):
        trace = decompress_trace(simple_compressed())
        # SYN at 0; SYN+ACK (dependent) at rtt; ACK (dependent) at 2*rtt.
        assert trace[1].timestamp == pytest.approx(0.040, abs=1e-9)
        assert trace[2].timestamp == pytest.approx(0.080, abs=1e-9)

    def test_direction_alternates_on_dependence(self):
        trace = decompress_trace(simple_compressed())
        # SYN c2s, SYN+ACK s2c, ACK c2s, FIN (not dependent) stays c2s.
        assert trace[0].dst_port == SERVER_PORT
        assert trace[1].src_port == SERVER_PORT
        assert trace[2].dst_port == SERVER_PORT
        assert trace[3].dst_port == SERVER_PORT

    def test_deterministic_with_seed(self):
        a = decompress_trace(simple_compressed(), DecompressorConfig(seed=5))
        b = decompress_trace(simple_compressed(), DecompressorConfig(seed=5))
        assert [p.src_ip for p in a] == [p.src_ip for p in b]

    def test_different_seed_different_identities(self):
        a = decompress_trace(simple_compressed(), DecompressorConfig(seed=5))
        b = decompress_trace(simple_compressed(), DecompressorConfig(seed=6))
        assert [p.src_ip for p in a] != [p.src_ip for p in b]

    def test_default_rtt_replaces_zero(self):
        compressed = simple_compressed()
        compressed.time_seq[0] = TimeSeqRecord(0.0, DatasetId.SHORT, 0, 0, rtt=0.0)
        config = DecompressorConfig(default_rtt=0.2)
        trace = decompress_trace(compressed, config)
        assert trace[1].timestamp == pytest.approx(0.2, abs=1e-9)


class TestLongFlowReplay:
    def test_gaps_replayed_exactly(self):
        compressed = CompressedTrace(name="t")
        values = tuple([32] * 60)
        gaps = tuple([0.25] * 59 + [0.0])
        compressed.long_templates.append(LongFlowTemplate(values, gaps))
        compressed.addresses.intern(0xC0A80050)
        compressed.time_seq.append(TimeSeqRecord(0.0, DatasetId.LONG, 0, 0))
        trace = decompress_trace(compressed)
        assert len(trace) == 60
        assert trace[1].timestamp - trace[0].timestamp == pytest.approx(0.25)


class TestSemanticInvariant:
    def test_vf_vectors_survive_roundtrip(self, multi_flow_trace):
        """The headline invariant: decompressed flows re-characterize to
        exactly the template vectors the compressor stored."""
        compressed = compress_trace(multi_flow_trace)
        decompressed = decompress_trace(compressed)
        original_flows = assemble_flows(multi_flow_trace.packets)
        decompressed_flows = assemble_flows(decompressed.packets)
        assert len(original_flows) == len(decompressed_flows)
        original_vectors = sorted(
            characterize_flow(f) for f in original_flows
        )
        decompressed_vectors = sorted(
            characterize_flow(f) for f in decompressed_flows
        )
        assert original_vectors == decompressed_vectors

    def test_destination_multiset_preserved(self, multi_flow_trace):
        compressed = compress_trace(multi_flow_trace)
        decompressed = decompress_trace(compressed)
        original = sorted(
            f.server_ip() for f in assemble_flows(multi_flow_trace.packets)
        )
        restored = sorted(
            f.server_ip() for f in assemble_flows(decompressed.packets)
        )
        assert original == restored

    def test_output_is_time_ordered(self, multi_flow_trace):
        decompressed = decompress_trace(compress_trace(multi_flow_trace))
        assert decompressed.is_time_ordered()


class TestConfig:
    def test_payload_classes(self):
        config = DecompressorConfig()
        assert config.payload_for_class(0) == 0
        assert config.payload_for_class(1) == 300
        assert config.payload_for_class(2) == 1460

    def test_invalid_class(self):
        with pytest.raises(ValueError):
            DecompressorConfig().payload_for_class(3)

    def test_empty_compressed_gives_empty_trace(self):
        compressed = CompressedTrace(name="empty", addresses=AddressTable())
        assert len(decompress_trace(compressed)) == 0


class TestStableSeeding:
    """Regression: per-flow RNG seeds must be stable across interpreters.

    The seed used to be ``hash()`` of a mixed tuple — an implementation
    detail of the interpreter, free to change between versions.  It is
    now a blake2b mix of the struct-packed flow identity, so the golden
    values below hold on every platform and Python version.
    """

    def test_flow_seed_golden_values(self):
        from repro.core.decompressor import flow_seed

        assert flow_seed(
            20050320, 4000, False, 0, 0xC0A80050, 400, 0
        ) == 4422328902637438788
        assert flow_seed(
            20050320, 4000, True, 0, 0xC0A80050, 400, 0
        ) == 6751824949563609070
        assert flow_seed(
            20050320, 4000, False, 0, 0xC0A80050, 400, 1
        ) == 5349238461560536712

    def test_golden_packet_identity(self):
        """Decompression is a pure function of (datasets, config)."""
        trace = decompress_trace(simple_compressed())
        packet = trace[0]
        assert packet.src_ip == 0xA062E3D4
        assert packet.src_port == 51603
        assert packet.seq == 1601182564
        assert packet.ack == 2931169296
        assert packet.ip_id == 2294

    def test_identity_collision_disambiguated_by_occurrence(self):
        """Two flows with identical identity fields draw distinct RNGs."""
        compressed = simple_compressed()
        compressed.time_seq.append(compressed.time_seq[0])
        trace = decompress_trace(compressed)
        sources = {p.src_ip for p in trace.packets if p.dst_port == SERVER_PORT}
        assert len(sources) == 2

    def test_seed_distinguishes_short_from_long(self):
        from repro.core.decompressor import flow_seed

        short = flow_seed(1, 0, False, 0, 1, 0, 0)
        long_ = flow_seed(1, 0, True, 0, 1, 0, 0)
        assert short != long_
