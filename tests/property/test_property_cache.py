"""Property tests for the cache simulator and simulated heap."""

from hypothesis import given, settings, strategies as st

from repro.memsim.cache import CacheConfig, SetAssociativeCache
from repro.memsim.memory import SimulatedHeap

cache_configs = st.sampled_from(
    [
        CacheConfig(256, 32, 1),
        CacheConfig(1024, 32, 2),
        CacheConfig(4096, 64, 4),
        CacheConfig(512, 16, 8),
    ]
)

address_streams = st.lists(
    st.integers(min_value=0, max_value=0xFFFFF), min_size=0, max_size=400
)


@settings(max_examples=60, deadline=None)
@given(cache_configs, address_streams)
def test_misses_never_exceed_accesses(config, stream):
    cache = SetAssociativeCache(config)
    cache.replay(stream)
    assert 0 <= cache.stats.misses <= cache.stats.accesses == len(stream)


@settings(max_examples=60, deadline=None)
@given(cache_configs, address_streams)
def test_misses_at_least_compulsory(config, stream):
    # Every distinct line must miss at least once (cold misses).
    cache = SetAssociativeCache(config)
    cache.replay(stream)
    distinct_lines = {a >> (config.line_bytes.bit_length() - 1) for a in stream}
    assert cache.stats.misses >= len(distinct_lines)


@settings(max_examples=60, deadline=None)
@given(cache_configs, address_streams)
def test_capacity_respected(config, stream):
    cache = SetAssociativeCache(config)
    cache.replay(stream)
    assert cache.resident_lines() <= config.set_count * config.associativity


@settings(max_examples=40, deadline=None)
@given(address_streams)
def test_bigger_cache_never_more_misses(stream):
    # LRU caches have the inclusion property: a larger cache with the
    # same associativity-per-set growth (full associativity doubling)
    # cannot miss more on the same trace.
    small = SetAssociativeCache(CacheConfig(512, 32, 1))
    large = SetAssociativeCache(CacheConfig(1024, 32, 2))
    small.replay(stream)
    large.replay(stream)
    assert large.stats.misses <= small.stats.misses


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.integers(min_value=1, max_value=256),
        min_size=1,
        max_size=60,
    )
)
def test_heap_alloc_free_alloc_reuses(sizes):
    heap = SimulatedHeap()
    addresses = [heap.alloc(size) for size in sizes]
    assert len(set(addresses)) == len(addresses)
    for address in addresses:
        heap.free(address)
    assert heap.live_allocations() == 0
    again = [heap.alloc(size) for size in sizes]
    assert set(again) <= set(addresses)  # full reuse, no growth
    assert heap.footprint_bytes() == sum(
        (size + 7) & ~7 for size in sizes
    )
