"""Property tests for the lossless byte codecs (LZ77, Huffman, deflate)."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.baselines.deflate import deflate_compress, deflate_decompress
from repro.baselines.huffman import build_huffman_code, huffman_decode, huffman_encode
from repro.baselines.lz77 import lz77_compress, lz77_decompress


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=4000))
def test_lz77_roundtrip(data):
    assert lz77_decompress(lz77_compress(data)) == data


@settings(max_examples=40, deadline=None)
@given(
    st.binary(max_size=400),
    st.integers(min_value=2, max_value=20),
)
def test_lz77_roundtrip_repetitive(chunk, repeats):
    data = chunk * repeats
    assert lz77_decompress(lz77_compress(data)) == data


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=500))
def test_huffman_roundtrip(symbols):
    frequencies = Counter(symbols)
    code = build_huffman_code(frequencies)
    encoded = huffman_encode(symbols, code)
    assert huffman_decode(encoded, code, len(symbols)) == symbols


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(
    st.integers(min_value=0, max_value=285),
    st.integers(min_value=1, max_value=10_000),
    min_size=1,
    max_size=100,
))
def test_huffman_kraft_inequality(frequencies):
    code = build_huffman_code(frequencies)
    kraft = sum(2 ** -length for length in code.lengths.values())
    assert kraft <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=3000))
def test_deflate_roundtrip(data):
    assert deflate_decompress(deflate_compress(data)) == data


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=2000))
def test_deflate_bounded_expansion(data):
    # Even adversarial input must not blow up beyond literals + tables.
    compressed = deflate_compress(data)
    assert len(compressed) <= int(len(data) * 1.3) + 250
