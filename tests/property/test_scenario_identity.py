"""Every registered scenario is a differential probe of the compressor.

The scenario zoo exists to widen the input distribution the engines are
tested against: incast microbursts (``web-search``/``data-mining``),
protocol mixes with UDP and one-way streams (``mixed-protocol``),
handshake-free half-open floods (``flood``), and correlated multipath
subflows (``mptcp``).  For each registered scenario this file pins

* **engine identity** — the columnar engine emits byte-for-byte the
  scalar engine's container, under arbitrary feed chunking;
* **mode identity** — the streaming facade (record feeds and column
  feeds, both engines) emits the batch compressor's exact bytes;
* **decompression identity** — the bounded-memory
  :class:`StreamingDecompressor` replays exactly the packet sequence
  the batch decompressor materializes.

Style and helpers follow ``tests/property/test_columnar_identity.py``.
"""

from functools import lru_cache

import pytest

from repro.core.codec import serialize_compressed
from repro.core.compressor import FlowClusterCompressor
from repro.core.decompressor import decompress_trace
from repro.core.replay import StreamingDecompressor
from repro.core.streaming import StreamingCompressor
from repro.net.columns import columns_from_records
from repro.synth.scenarios import get_scenario, scenario_names

from tests.property.test_columnar_identity import columnar_bytes, scalar_bytes

DURATION = 1.2
FLOW_RATE = 24.0
SEED = 97


@lru_cache(maxsize=None)
def scenario_packets(name):
    """One small deterministic trace per scenario, shared across tests."""
    trace = get_scenario(name).build(
        duration=DURATION, flow_rate=FLOW_RATE, seed=SEED
    )
    assert trace.packets, f"scenario {name!r} produced an empty workload"
    return tuple(trace.packets)


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize("chunk_size", [1, 97, 5000])
def test_engine_identity(name, chunk_size):
    """Columnar == scalar bytes for every scenario, any feed chunking."""
    packets = list(scenario_packets(name))
    assert columnar_bytes(packets, chunks=chunk_size) == scalar_bytes(packets)


@pytest.mark.parametrize("name", scenario_names())
def test_engine_identity_randomized_chunks(name):
    packets = list(scenario_packets(name))
    expected = scalar_bytes(packets)
    for seed in (0, 1, 2):
        assert columnar_bytes(packets, seed=seed) == expected


@pytest.mark.parametrize("name", scenario_names())
@pytest.mark.parametrize(
    "engine,columnar_feed",
    [("scalar", False), ("scalar", True), ("columnar", False), ("columnar", True)],
)
def test_batch_stream_identity(name, engine, columnar_feed):
    """The streaming facade matches the batch compressor byte for byte."""
    packets = list(scenario_packets(name))
    expected = scalar_bytes(packets)
    compressor = StreamingCompressor(name="t", engine=engine)
    for start in range(0, len(packets), 211):
        chunk = packets[start : start + 211]
        if columnar_feed:
            compressor.feed(columns_from_records(chunk))
        else:
            compressor.feed(chunk)
    assert serialize_compressed(compressor.finish()) == expected


@pytest.mark.parametrize("name", scenario_names())
def test_batch_streaming_decompress_identity(name):
    """Batch and bounded-memory replay emit the identical packet stream."""
    packets = list(scenario_packets(name))
    engine = FlowClusterCompressor(name="t")
    for packet in packets:
        engine.add_packet(packet)
    compressed = engine.finish()
    batch = decompress_trace(compressed).packets
    streamed = list(StreamingDecompressor(compressed))
    assert streamed == batch
