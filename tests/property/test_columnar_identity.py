"""The differential harness pinning columnar/scalar byte identity.

The columnar engine's only contract is *the same bytes, faster*: for any
packet sequence, any chunking of the feed, and either storage backend,
``engine="columnar"`` must produce the exact ``.fctc`` / ``.fctca``
files the scalar engine does.  This file is the gate — hypothesis-driven
packet sequences (including out-of-order timestamps that exercise the
auto-base rebase, unterminated flows closed by idle eviction, and
degenerate self-loop tuples), generated traffic models, and the on-disk
fixture corpus all run through both engines and are compared byte for
byte.
"""

import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.core.columnar import ColumnarFlowCompressor
from repro.core.compressor import CompressorConfig, FlowClusterCompressor
from repro.core.decompressor import decompress_trace
from repro.core.streaming import StreamingCompressor
from repro.net.columns import columns_from_records
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN
from repro.synth import generate_p2p_trace, generate_web_trace

from tests.property.test_property_streaming import _unterminated_flow


def scalar_bytes(packets, config=None, name="t"):
    engine = FlowClusterCompressor(config, name=name)
    for packet in packets:
        engine.add_packet(packet)
    return serialize_compressed(engine.finish())


def columnar_bytes(packets, config=None, name="t", chunks=None, seed=0):
    """Feed through the columnar engine in randomized chunk sizes."""
    engine = ColumnarFlowCompressor(config, name=name)
    rng = random.Random(seed)
    packets = list(packets)
    start = 0
    while start < len(packets):
        size = chunks if chunks is not None else rng.randint(1, 400)
        engine.feed_columns(columns_from_records(packets[start : start + size]))
        start += size
    return serialize_compressed(engine.finish())


# -- hypothesis packet sequences -------------------------------------------


_FLAG_CHOICES = (
    TCP_SYN,
    TCP_SYN | TCP_ACK,
    TCP_ACK,
    TCP_ACK | TCP_FIN,
    TCP_RST,
    TCP_FIN,
    0,
)

_packet = st.builds(
    PacketRecord,
    timestamp=st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    src_ip=st.integers(min_value=1, max_value=8),
    dst_ip=st.integers(min_value=1, max_value=8),
    src_port=st.integers(min_value=1, max_value=5),
    dst_port=st.integers(min_value=1, max_value=5),
    protocol=st.sampled_from((6, 17)),
    flags=st.sampled_from(_FLAG_CHOICES),
    payload_len=st.sampled_from((0, 1, 500, 501, 1460)),
)


@settings(max_examples=40, deadline=None)
@given(
    packets=st.lists(_packet, min_size=0, max_size=120),
    chunk_size=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_arbitrary_packet_sequences(packets, chunk_size, seed):
    """Tiny 5-tuple space → heavy key collisions, reordering → rebases.

    Unsorted hypothesis timestamps drive the auto-base rebase path;
    FIN/RST mixes drive mid-chunk closes; the cramped address space
    forces flow reuse after termination.
    """
    expected = scalar_bytes(packets)
    assert columnar_bytes(packets, chunks=chunk_size) == expected
    assert columnar_bytes(packets, seed=seed) == expected


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=700),
)
def test_web_trace_identity(seed, chunk_size):
    trace = generate_web_trace(duration=1.5, flow_rate=25.0, seed=seed)
    assert columnar_bytes(trace.packets, chunks=chunk_size) == scalar_bytes(
        trace.packets
    )


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=700),
)
def test_p2p_trace_identity(seed, chunk_size):
    trace = generate_p2p_trace(duration=1.5, session_rate=6.0, seed=seed)
    assert columnar_bytes(trace.packets, chunks=chunk_size) == scalar_bytes(
        trace.packets
    )


@settings(max_examples=10, deadline=None)
@given(
    idle_timeout=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    gap=st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
    chunk_size=st.integers(min_value=1, max_value=16),
)
def test_idle_eviction_identity(idle_timeout, gap, chunk_size):
    """Idle eviction fires (or not) mid-chunk identically on both engines."""
    packets = _unterminated_flow(0.0, 2000) + _unterminated_flow(gap, 2001)
    config = CompressorConfig(idle_timeout=idle_timeout)
    assert columnar_bytes(packets, config, chunks=chunk_size) == scalar_bytes(
        packets, config
    )


# -- fixture corpus ---------------------------------------------------------


FIXTURES = Path(__file__).resolve().parent.parent / "fixtures"


@pytest.mark.parametrize("fixture", ["v1.fctc"])
def test_fixture_corpus_identity(fixture):
    """Replay the on-disk corpus and recompress through both engines."""
    compressed = deserialize_compressed((FIXTURES / fixture).read_bytes())
    packets = decompress_trace(compressed).packets
    assert packets, "fixture decodes to packets"
    assert columnar_bytes(packets) == scalar_bytes(packets)


# -- the full streaming facade over both engines ---------------------------


def test_streaming_facade_feed_shapes_identical():
    """records-to-scalar, records-to-columnar, columns-to-either: one output."""
    trace = generate_web_trace(duration=3.0, flow_rate=30.0, seed=21)
    packets = list(trace.packets)
    outputs = []
    for engine, columnar_feed in (
        ("scalar", False),
        ("scalar", True),
        ("columnar", False),
        ("columnar", True),
    ):
        compressor = StreamingCompressor(name="t", engine=engine)
        for start in range(0, len(packets), 333):
            chunk = packets[start : start + 333]
            if columnar_feed:
                compressor.feed(columns_from_records(chunk))
            else:
                compressor.feed(chunk)
        outputs.append(serialize_compressed(compressor.finish()))
    assert len(set(outputs)) == 1


@pytest.fixture(scope="module")
def tsh_path(tmp_path_factory):
    trace = generate_web_trace(duration=4.0, flow_rate=40.0, seed=33)
    path = tmp_path_factory.mktemp("columnar-identity") / "t.tsh"
    trace.save_tsh(path)
    return path


def _compress_file(tsh_path, dest_dir, engine, **make_kwargs):
    """Same dest *filename* per engine: the trace name is serialized."""
    from repro import api

    dest = dest_dir / "out.fctc"
    with api.open(tsh_path) as store:
        store.compress(dest, options=api.Options.make(engine=engine, **make_kwargs))
    return dest.read_bytes()


@pytest.mark.parametrize("mode_kwargs", [{}, {"stream": True}, {"workers": 2}])
def test_fctc_file_identity(tsh_path, tmp_path, mode_kwargs):
    """Facade batch/stream/parallel paths: one ``.fctc`` per input."""
    (tmp_path / "s").mkdir()
    (tmp_path / "c").mkdir()
    scalar = _compress_file(tsh_path, tmp_path / "s", "scalar", **mode_kwargs)
    columnar = _compress_file(tsh_path, tmp_path / "c", "columnar", **mode_kwargs)
    assert columnar == scalar


def test_fctca_archive_identity(tsh_path, tmp_path):
    """Segment rotation splits chunks at the same rows on both engines."""
    from repro import api

    paths = {}
    for engine in ("scalar", "columnar"):
        dest = tmp_path / engine / "out.fctca"
        dest.parent.mkdir()
        api.create_archive(
            dest,
            [tsh_path],
            options=api.Options.make(engine=engine, segment_span=1.0),
        )
        paths[engine] = dest.read_bytes()
    assert paths["columnar"] == paths["scalar"]


def test_fallback_backend_identity(monkeypatch):
    """With numpy gated off, the columnar engine still matches — exactly."""
    from repro.net import columns

    trace = generate_web_trace(duration=1.5, flow_rate=30.0, seed=5)
    expected = scalar_bytes(trace.packets)
    assert columnar_bytes(trace.packets, chunks=257) == expected

    monkeypatch.setattr(columns, "_np", None)
    monkeypatch.setattr(columns, "_numpy_checked", True)
    assert columns_from_records(trace.packets[:3]).backend == "array"
    assert columnar_bytes(trace.packets, chunks=257) == expected
