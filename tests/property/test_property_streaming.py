"""Property: streaming and batch compression are byte-identical.

The streaming engine promises the exact bytes of the batch path for any
packet sequence and any chunking of the feed — including traces whose
flows never see a FIN/RST and must be closed by idle eviction.  Checked
here over generated Web and P2P traffic.
"""

from hypothesis import given, settings, strategies as st

from repro.core.codec import serialize_compressed
from repro.core.compressor import CompressorConfig, compress_trace
from repro.core.decompressor import decompress_trace
from repro.core.streaming import StreamingCompressor, compress_stream
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_SYN
from repro.synth import generate_p2p_trace, generate_web_trace


def _stream_in_chunks(trace, chunk_size, config=None):
    compressor = StreamingCompressor(config, name=trace.name)
    for start in range(0, len(trace.packets), chunk_size):
        compressor.feed(trace.packets[start : start + chunk_size])
    return serialize_compressed(compressor.finish())


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=700),
)
def test_web_trace_equivalence(seed, chunk_size):
    trace = generate_web_trace(duration=1.5, flow_rate=25.0, seed=seed)
    batch = serialize_compressed(compress_trace(trace))
    assert _stream_in_chunks(trace, chunk_size) == batch


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    chunk_size=st.integers(min_value=1, max_value=700),
)
def test_p2p_trace_equivalence(seed, chunk_size):
    trace = generate_p2p_trace(duration=1.5, session_rate=6.0, seed=seed)
    batch = serialize_compressed(compress_trace(trace))
    assert _stream_in_chunks(trace, chunk_size) == batch


def _unterminated_flow(start, client_port, packets=4):
    """A flow that never sends FIN/RST — only idle eviction closes it."""
    client, server = 0x8D5A0101, 0xC0A80050
    out = [
        PacketRecord(start, client, server, client_port, 80, flags=TCP_SYN),
        PacketRecord(
            start + 0.01, server, client, 80, client_port, flags=TCP_SYN | TCP_ACK
        ),
    ]
    for index in range(packets):
        out.append(
            PacketRecord(
                start + 0.02 + index * 0.001,
                client,
                server,
                client_port,
                80,
                flags=TCP_ACK,
                payload_len=512,
            )
        )
    return out


@settings(max_examples=10, deadline=None)
@given(
    idle_timeout=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    gap=st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
    chunk_size=st.integers(min_value=1, max_value=16),
)
def test_idle_eviction_equivalence(idle_timeout, gap, chunk_size):
    """Unterminated flows separated by an arbitrary quiet gap.

    Whether the gap exceeds the idle timeout (mid-trace eviction) or not
    (end-of-trace flush), streaming must mirror batch byte for byte.
    """
    packets = _unterminated_flow(0.0, 2000) + _unterminated_flow(gap, 2001)
    config = CompressorConfig(idle_timeout=idle_timeout)
    batch = serialize_compressed(compress_trace(iter(packets), config))

    compressor = StreamingCompressor(config)
    for start in range(0, len(packets), chunk_size):
        compressor.feed(packets[start : start + chunk_size])
    assert serialize_compressed(compressor.finish()) == batch

    # Both flows must be present and replayable despite missing FIN/RST.
    assert compressor.output.flow_count() == 2
    restored = decompress_trace(compressor.output)
    assert len(restored) == len(packets)


def test_streaming_roundtrip_is_lossless_in_counts():
    """Stream-compress then decompress: flow/packet counts survive."""
    trace = generate_web_trace(duration=2.0, flow_rate=30.0, seed=5)
    compressed = compress_stream(iter(trace.packets), name=trace.name)
    restored = decompress_trace(compressed)
    assert len(restored) == len(trace)
    assert compressed.original_packet_count == len(trace)
