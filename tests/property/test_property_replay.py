"""Property: streaming and batch decompression are byte-identical.

The streaming decompressor promises the exact packet sequence of
:func:`decompress_trace` for any compressed input — Web and P2P
traffic, serialized round-trips, arbitrary decompressor configs — while
holding only the concurrent-flow working set.  The archive replay makes
the same promise against the per-segment batch reference.
"""

from hypothesis import given, settings, strategies as st

from repro.archive import ArchiveReader, build_archive
from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.core.compressor import compress_trace
from repro.core.decompressor import (
    DecompressorConfig,
    decompress_trace,
    merge_sort_key,
)
from repro.core.replay import StreamingDecompressor, iter_decompressed
from repro.synth import generate_p2p_trace, generate_web_trace
from repro.trace.tsh import write_tsh_bytes


def _assert_stream_equals_batch(compressed, config=None):
    batch = decompress_trace(compressed, config)
    engine = StreamingDecompressor(compressed, config)
    streamed = list(engine.packets())
    assert write_tsh_bytes(streamed) == write_tsh_bytes(batch.packets)
    assert engine.stats.packets_emitted == len(batch)
    return engine


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_web_trace_replay_equivalence(seed):
    trace = generate_web_trace(duration=1.5, flow_rate=25.0, seed=seed)
    _assert_stream_equals_batch(compress_trace(trace))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_p2p_trace_replay_equivalence(seed):
    trace = generate_p2p_trace(duration=1.5, session_rate=6.0, seed=seed)
    _assert_stream_equals_batch(compress_trace(trace))


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    decomp_seed=st.integers(min_value=0, max_value=2**32),
    default_rtt=st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
)
def test_replay_equivalence_under_configs(seed, decomp_seed, default_rtt):
    trace = generate_web_trace(duration=1.0, flow_rate=25.0, seed=seed)
    config = DecompressorConfig(seed=decomp_seed, default_rtt=default_rtt)
    _assert_stream_equals_batch(compress_trace(trace), config)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_serialized_roundtrip_replays_identically(seed):
    """In-memory container and its codec round-trip stream the same."""
    trace = generate_web_trace(duration=1.5, flow_rate=25.0, seed=seed)
    compressed = compress_trace(trace)
    roundtripped = deserialize_compressed(serialize_compressed(compressed))
    direct = write_tsh_bytes(iter_decompressed(compressed))
    assert write_tsh_bytes(iter_decompressed(roundtripped)) == direct


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    segment_span=st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
)
def test_archive_replay_matches_per_segment_batch(tmp_path_factory, seed, segment_span):
    trace = generate_web_trace(duration=4.0, flow_rate=20.0, seed=seed)
    path = (
        tmp_path_factory.mktemp("prop-replay")
        / f"t-{seed}-{segment_span:.2f}.fctca"
    )
    build_archive(
        path, iter(trace.packets), segment_span=segment_span,
        segment_packets=10_000,
    )
    reference = []
    with ArchiveReader(path) as reader:
        for index in range(reader.segment_count):
            reference.extend(decompress_trace(reader.load_segment(index)).packets)
    reference.sort(key=merge_sort_key)
    with ArchiveReader(path) as reader:
        streamed = write_tsh_bytes(reader.iter_packets())
    assert streamed == write_tsh_bytes(reference)
