"""Property tests for the core compressor on synthesized flow mixes."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.compressor import CompressorConfig, compress_trace
from repro.core.decompressor import decompress_trace
from repro.flows.assembler import assemble_flows
from repro.flows.characterize import characterize_flow
from repro.net.packet import PacketRecord
from repro.net.tcp import TCP_ACK, TCP_FIN, TCP_SYN
from repro.trace.trace import Trace


@st.composite
def flow_mixes(draw):
    """A small trace of well-formed TCP flows with varied shapes."""
    flow_count = draw(st.integers(min_value=1, max_value=8))
    packets = []
    start = 0.0
    for index in range(flow_count):
        start += draw(
            st.floats(min_value=0.001, max_value=0.5, allow_nan=False)
        )
        client = 0x80000000 + draw(st.integers(min_value=1, max_value=0xFFFF))
        server = 0xC0000000 + draw(st.integers(min_value=1, max_value=0xFF))
        port = 1024 + index
        data_packets = draw(st.integers(min_value=0, max_value=12))
        rtt = draw(st.floats(min_value=0.001, max_value=0.2, allow_nan=False))
        now = start
        packets.append(
            PacketRecord(now, client, server, port, 80, flags=TCP_SYN)
        )
        now += rtt
        packets.append(
            PacketRecord(now, server, client, 80, port, flags=TCP_SYN | TCP_ACK)
        )
        now += rtt
        packets.append(
            PacketRecord(now, client, server, port, 80, flags=TCP_ACK)
        )
        for _ in range(data_packets):
            now += 0.001
            payload = draw(st.sampled_from((0, 200, 600, 1460)))
            packets.append(
                PacketRecord(
                    now, server, client, 80, port,
                    flags=TCP_ACK, payload_len=payload,
                )
            )
        now += 0.001
        packets.append(
            PacketRecord(now, client, server, port, 80, flags=TCP_FIN | TCP_ACK)
        )
    packets.sort(key=lambda p: p.timestamp)
    return Trace(packets, name="prop")


@settings(max_examples=40, deadline=None)
@given(flow_mixes())
def test_every_flow_gets_a_time_seq_record(trace):
    compressed = compress_trace(trace)
    flows = assemble_flows(trace.packets)
    assert compressed.flow_count() == len(flows)


@settings(max_examples=40, deadline=None)
@given(flow_mixes())
def test_packet_count_preserved(trace):
    compressed = compress_trace(trace)
    decompressed = decompress_trace(compressed)
    assert len(decompressed) == len(trace)


@settings(max_examples=40, deadline=None)
@given(flow_mixes())
def test_compressed_validates(trace):
    compressed = compress_trace(trace)
    compressed.validate()  # referential integrity always holds


@settings(max_examples=30, deadline=None)
@given(flow_mixes())
def test_exact_clustering_preserves_vector_multiset(trace):
    """With a 0% threshold (exact matching), decompression reproduces
    the exact multiset of V_f vectors."""
    config = CompressorConfig(similarity_percent=0.0)
    compressed = compress_trace(trace, config)
    decompressed = decompress_trace(compressed)
    original = sorted(
        characterize_flow(f) for f in assemble_flows(trace.packets)
    )
    restored = sorted(
        characterize_flow(f) for f in assemble_flows(decompressed.packets)
    )
    assert original == restored


@settings(max_examples=30, deadline=None)
@given(flow_mixes(), st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
def test_wider_threshold_never_more_templates(trace, extra_percent):
    tight = compress_trace(trace, CompressorConfig(similarity_percent=2.0))
    loose = compress_trace(
        trace, CompressorConfig(similarity_percent=2.0 + extra_percent)
    )
    assert len(loose.short_templates) <= len(tight.short_templates)
