"""Property tests for the compressed-container codec and TSH format."""

from hypothesis import given, settings, strategies as st

from repro.core.codec import deserialize_compressed, serialize_compressed
from repro.core.datasets import (
    CompressedTrace,
    DatasetId,
    LongFlowTemplate,
    ShortFlowTemplate,
    TimeSeqRecord,
)
from repro.net.packet import PacketRecord
from repro.trace.tsh import decode_record, encode_record

short_templates = st.lists(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=50).map(
        lambda values: ShortFlowTemplate(tuple(values))
    ),
    max_size=8,
)

long_templates = st.lists(
    st.integers(min_value=51, max_value=80).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.integers(min_value=0, max_value=255), min_size=n, max_size=n
            ),
            st.lists(
                st.floats(min_value=0.0, max_value=6.0), min_size=n, max_size=n
            ),
        ).map(lambda vg: LongFlowTemplate(tuple(vg[0]), tuple(vg[1])))
    ),
    max_size=3,
)

addresses = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=20, unique=True
)


@st.composite
def containers(draw):
    shorts = draw(short_templates)
    longs = draw(long_templates)
    addrs = draw(addresses)
    compressed = CompressedTrace(name=draw(st.text(max_size=10)))
    compressed.short_templates = shorts
    compressed.long_templates = longs
    for address in addrs:
        compressed.addresses.intern(address)
    flow_count = draw(st.integers(min_value=0, max_value=10))
    for _ in range(flow_count):
        if longs and draw(st.booleans()):
            dataset = DatasetId.LONG
            template_index = draw(
                st.integers(min_value=0, max_value=len(longs) - 1)
            )
            rtt = 0.0
        elif shorts:
            dataset = DatasetId.SHORT
            template_index = draw(
                st.integers(min_value=0, max_value=len(shorts) - 1)
            )
            rtt = draw(st.floats(min_value=0.0, max_value=6.0))
        else:
            continue
        compressed.time_seq.append(
            TimeSeqRecord(
                timestamp=draw(st.floats(min_value=0.0, max_value=1000.0)),
                dataset=dataset,
                template_index=template_index,
                address_index=draw(
                    st.integers(min_value=0, max_value=len(addrs) - 1)
                ),
                rtt=rtt,
            )
        )
    return compressed


@settings(max_examples=50, deadline=None)
@given(containers())
def test_container_roundtrip_structure(compressed):
    restored = deserialize_compressed(serialize_compressed(compressed))
    assert restored.template_counts() == compressed.template_counts()
    assert len(restored.addresses) == len(compressed.addresses)
    assert restored.flow_count() == compressed.flow_count()
    for original, rebuilt in zip(compressed.short_templates, restored.short_templates):
        assert rebuilt.values == original.values
    for original, rebuilt in zip(compressed.time_seq, restored.time_seq):
        assert rebuilt.dataset == original.dataset
        assert rebuilt.template_index == original.template_index
        assert rebuilt.address_index == original.address_index
        assert abs(rebuilt.timestamp - original.timestamp) <= 1e-4 + 1e-9
        assert abs(rebuilt.rtt - original.rtt) <= 1e-4 + 1e-9


packets = st.builds(
    PacketRecord,
    timestamp=st.floats(min_value=0.0, max_value=4e9, allow_nan=False),
    src_ip=st.integers(min_value=0, max_value=0xFFFFFFFF),
    dst_ip=st.integers(min_value=0, max_value=0xFFFFFFFF),
    src_port=st.integers(min_value=0, max_value=0xFFFF),
    dst_port=st.integers(min_value=0, max_value=0xFFFF),
    protocol=st.integers(min_value=0, max_value=255),
    flags=st.integers(min_value=0, max_value=0x3F),
    payload_len=st.integers(min_value=0, max_value=0xFFFF - 40),
    seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ack=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ttl=st.integers(min_value=0, max_value=255),
    ip_id=st.integers(min_value=0, max_value=0xFFFF),
    window=st.integers(min_value=0, max_value=0xFFFF),
)


@settings(max_examples=200)
@given(packets)
def test_tsh_record_roundtrip(packet):
    decoded = decode_record(encode_record(packet))
    assert decoded.src_ip == packet.src_ip
    assert decoded.dst_ip == packet.dst_ip
    assert decoded.src_port == packet.src_port
    assert decoded.dst_port == packet.dst_port
    assert decoded.protocol == packet.protocol
    assert decoded.flags == packet.flags
    assert decoded.payload_len == packet.payload_len
    assert decoded.seq == packet.seq
    assert decoded.ack == packet.ack
    assert decoded.ttl == packet.ttl
    assert decoded.window == packet.window
    assert abs(decoded.timestamp - packet.timestamp) <= 1e-6 * max(
        1.0, packet.timestamp
    )
