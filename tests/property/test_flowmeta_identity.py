"""Property: the flow-metadata fast path equals the full packet decode.

``iter_flow_records`` claims to produce, without synthesizing a single
packet, exactly what a full replay would aggregate: the same flows, the
same per-flow packet/byte splits, the same time bounds.  This suite
pins that identity across every registered traffic scenario and both
compression engines — the record stream is compared against aggregates
computed from ``iter_packets``, the archive's packet-synthesis path.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

import repro
from repro.archive.reader import ArchiveReader
from repro.core.decompressor import SERVER_PORT
from repro.core.flowmeta import flow_records, flow_records_by_decode
from repro.net.columns import numpy_or_none
from repro.synth.scenarios import get_scenario, scenario_names

ENGINES = ["scalar", "columnar"]


def _archive_for(tmp_path, scenario_name: str, engine: str):
    if engine == "columnar" and numpy_or_none() is None:
        pytest.skip("columnar engine needs numpy")
    scenario = get_scenario(scenario_name)
    trace = scenario.build(duration=3.0, flow_rate=20.0)
    path = tmp_path / f"{scenario_name}-{engine}.fctca"
    repro.api.create_archive(
        path,
        iter(trace.packets),
        options=repro.api.Options.make(engine=engine, segment_span=1.0),
    )
    return path


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scenario_name", scenario_names())
def test_fast_path_matches_full_decode(tmp_path, scenario_name, engine):
    path = _archive_for(tmp_path, scenario_name, engine)
    with ArchiveReader(path) as reader:
        records = list(reader.iter_flow_records())
        flow_count = reader.flow_count()

        # Aggregate the full packet synthesis: a packet belongs to the
        # flow of its server endpoint (the port-80 side — client ports
        # start above 1024, so the test is unambiguous).
        packet_count = 0
        per_dst_packets: dict[int, int] = defaultdict(int)
        per_dst_bytes: dict[int, int] = defaultdict(int)
        for packet in reader.iter_packets():
            packet_count += 1
            server = (
                packet.dst_ip if packet.dst_port == SERVER_PORT else packet.src_ip
            )
            per_dst_packets[server] += 1
            per_dst_bytes[server] += packet.payload_len

    assert len(records) == flow_count
    assert sum(record.packets for record in records) == packet_count
    assert all(
        record.packets == record.packets_fwd + record.packets_rev
        for record in records
    )

    meta_packets: dict[int, int] = defaultdict(int)
    meta_bytes: dict[int, int] = defaultdict(int)
    for record in records:
        meta_packets[record.dst] += record.packets
        meta_bytes[record.dst] += record.bytes
    assert dict(meta_packets) == dict(per_dst_packets)
    assert dict(meta_bytes) == dict(per_dst_bytes)


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_record_twins_are_identical(tmp_path, scenario_name):
    """Per-record identity, including bit-exact float end timestamps."""
    path = _archive_for(tmp_path, scenario_name, "scalar")
    with ArchiveReader(path) as reader:
        for segment in range(reader.segment_count):
            compressed = reader.load_segment(segment)
            fast = list(flow_records(compressed, segment=segment))
            slow = list(flow_records_by_decode(compressed, segment=segment))
            assert fast == slow


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_fast_path_starts_are_nondecreasing(tmp_path, scenario_name):
    """The aggregator's precondition, guaranteed by the reader merge."""
    path = _archive_for(tmp_path, scenario_name, "scalar")
    with ArchiveReader(path) as reader:
        starts = [record.start for record in reader.iter_flow_records()]
    assert starts == sorted(starts)
