"""Property tests for the section 2 characterization and distance rule."""

from hypothesis import given, settings, strategies as st

from repro.flows.characterize import (
    CharacterizationConfig,
    Weights,
    decode_packet_value,
    payload_size_class,
)
from repro.flows.distance import (
    similarity_threshold,
    vector_distance,
    vectors_similar,
)

triples = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=1),
    st.integers(min_value=0, max_value=2),
)

place_value_weights = st.tuples(
    st.integers(min_value=1, max_value=8),   # payload weight w3
    st.integers(min_value=1, max_value=8),   # slack for w2
    st.integers(min_value=1, max_value=8),   # slack for w1
).map(
    lambda t: Weights(
        payload=t[0],
        dependence=2 * t[0] + t[1],
        flags=(2 * t[0] + t[1]) + 2 * t[0] + t[2],
    )
)


@given(triples)
def test_default_weights_encode_decode(triple):
    g1, g2, g3 = triple
    value = 16 * g1 + 4 * g2 + 1 * g3
    assert decode_packet_value(value) == triple


@settings(max_examples=100)
@given(place_value_weights, triples)
def test_any_place_value_weights_invertible(weights, triple):
    g1, g2, g3 = triple
    value = weights.flags * g1 + weights.dependence * g2 + weights.payload * g3
    config = CharacterizationConfig(weights=weights)
    assert decode_packet_value(value, config) == triple


@given(st.integers(min_value=0, max_value=100_000))
def test_payload_class_total_and_ordered(payload):
    klass = payload_size_class(payload)
    assert klass in (0, 1, 2)
    if payload == 0:
        assert klass == 0
    if payload > 500:
        assert klass == 2


vectors = st.lists(st.integers(min_value=0, max_value=54), min_size=1, max_size=50)


@given(vectors)
def test_distance_identity(vector):
    assert vector_distance(vector, vector) == 0


@given(vectors, st.data())
def test_distance_symmetry(a, data):
    b = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=54),
            min_size=len(a),
            max_size=len(a),
        )
    )
    assert vector_distance(a, b) == vector_distance(b, a)


@given(vectors, st.data())
def test_triangle_inequality(a, data):
    same_length = st.lists(
        st.integers(min_value=0, max_value=54),
        min_size=len(a),
        max_size=len(a),
    )
    b = data.draw(same_length)
    c = data.draw(same_length)
    assert vector_distance(a, c) <= vector_distance(a, b) + vector_distance(b, c)


@given(vectors, st.data())
def test_similarity_consistent_with_threshold(a, data):
    b = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=54),
            min_size=len(a),
            max_size=len(a),
        )
    )
    similar = vectors_similar(a, b)
    assert similar == (vector_distance(a, b) < similarity_threshold(len(a)))
