#!/usr/bin/env python
"""Docs health check: link validation + CLI and API example smoke-runs.

Three passes, pure stdlib, run as the CI ``docs`` job:

1. **Link check** — every inline markdown link in ``README.md`` and
   ``docs/*.md`` is resolved: relative paths must exist in the repo,
   ``#fragments`` must match a heading slug in the target document.
   External ``http(s)`` links are skipped (no network in the check, by
   design — it must give the same verdict offline).
2. **CLI example smoke-run** — every fenced ```` ```sh ```` block in
   ``docs/CLI.md``, ``docs/SCENARIOS.md`` and ``docs/ANALYTICS.md``
   is executed, in document
   order, in one shared temporary directory per document.  The blocks
   are written as a single coherent pipeline (generate → compress → …
   → replay), so later examples consume earlier outputs; a doc edit
   that breaks the pipeline breaks this check.  Blocks fenced as
   ```` ```text ```` (or any other language) are illustrative and not
   executed.
3. **API example smoke-run** — every fenced ```` ```python ```` block
   in ``docs/API.md``, ``docs/OBSERVABILITY.md``, ``docs/SERVE.md``,
   ``docs/SCENARIOS.md`` and ``docs/ANALYTICS.md``
   runs the same way (document order, one shared directory per
   document), with
   ``DeprecationWarning`` promoted to an error so the reference docs
   can never drift onto a deprecated entry point.

``repro-trace`` resolves through a shim that executes
``python -m repro.cli`` with ``PYTHONPATH=src``, so the check passes
both against an installed package and a bare source tree.
"""

from __future__ import annotations

import os
import re
import stat
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_SH_BLOCK = re.compile(r"```sh\n(.*?)```", re.DOTALL)
_PY_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (ASCII-ish approximation)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    return {github_slug(h) for h in _HEADING.findall(path.read_text("utf-8"))}


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        text = doc.read_text("utf-8")
        targets = _LINK.findall(text) + _IMAGE.findall(text)
        for target in targets:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            resolved = doc if not path_part else (doc.parent / path_part)
            if not resolved.exists():
                errors.append(f"{doc.relative_to(REPO)}: broken link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if github_slug(fragment) not in heading_slugs(resolved):
                    errors.append(
                        f"{doc.relative_to(REPO)}: missing anchor -> {target}"
                    )
    return errors


def _shim_dir(tmp: Path) -> Path:
    """A PATH entry whose ``repro-trace`` runs this source tree's CLI."""
    bin_dir = tmp / "bin"
    bin_dir.mkdir()
    shim = bin_dir / "repro-trace"
    shim.write_text(
        f'#!/bin/sh\nexec "{sys.executable}" -m repro.cli "$@"\n'
    )
    shim.chmod(shim.stat().st_mode | stat.S_IEXEC)
    return bin_dir


def run_cli_examples(doc_name: str) -> list[str]:
    """Execute every ```sh block of one document, in order.

    One shared working directory per document (later blocks consume
    earlier outputs) with a ``repro-trace`` shim on PATH, so the doc's
    pipeline runs exactly as written against the bare source tree.
    """
    cli_md = REPO / "docs" / doc_name
    blocks = _SH_BLOCK.findall(cli_md.read_text("utf-8"))
    if not blocks:
        return [f"{cli_md.relative_to(REPO)}: no ```sh blocks found"]
    errors = []
    with tempfile.TemporaryDirectory(prefix="cli-md-smoke-") as workdir:
        env = dict(os.environ)
        env["PATH"] = f"{_shim_dir(Path(workdir))}{os.pathsep}{env['PATH']}"
        env["PYTHONPATH"] = (
            f"{REPO / 'src'}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(REPO / "src")
        )
        for index, block in enumerate(blocks, start=1):
            proc = subprocess.run(
                ["bash", "-euo", "pipefail", "-c", block],
                cwd=workdir,
                env=env,
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                errors.append(
                    f"docs/{doc_name} example block {index} exited "
                    f"{proc.returncode}:\n{block}\n--- stderr ---\n"
                    f"{proc.stderr.strip()}"
                )
                break  # later blocks depend on this one's outputs
            print(f"docs/{doc_name} block {index}: ok")
    return errors


def run_python_examples(doc_name: str) -> list[str]:
    """Execute every ```python block of one document, in order.

    One shared working directory (later blocks consume earlier outputs),
    ``PYTHONPATH=src`` so the check works on a bare source tree, and
    ``-W error::DeprecationWarning`` so a reference example that routes
    through a 1.1 shim fails the docs job.
    """
    doc_md = REPO / "docs" / doc_name
    blocks = _PY_BLOCK.findall(doc_md.read_text("utf-8"))
    if not blocks:
        return [f"{doc_md.relative_to(REPO)}: no ```python blocks found"]
    errors = []
    with tempfile.TemporaryDirectory(prefix="docs-md-smoke-") as workdir:
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{REPO / 'src'}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH")
            else str(REPO / "src")
        )
        for index, block in enumerate(blocks, start=1):
            proc = subprocess.run(
                [sys.executable, "-W", "error::DeprecationWarning", "-c", block],
                cwd=workdir,
                env=env,
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                errors.append(
                    f"docs/{doc_name} example block {index} exited "
                    f"{proc.returncode}:\n{block}\n--- stderr ---\n"
                    f"{proc.stderr.strip()}"
                )
                break  # later blocks depend on this one's outputs
            print(f"docs/{doc_name} block {index}: ok")
    return errors


def main() -> int:
    errors = check_links()
    print(f"link check: {len(DOC_FILES)} documents, {len(errors)} errors")
    if not errors:
        errors += run_cli_examples("CLI.md")
    if not errors:
        errors += run_cli_examples("SCENARIOS.md")
    if not errors:
        errors += run_cli_examples("ANALYTICS.md")
    if not errors:
        errors += run_python_examples("API.md")
    if not errors:
        errors += run_python_examples("OBSERVABILITY.md")
    if not errors:
        errors += run_python_examples("SERVE.md")
    if not errors:
        errors += run_python_examples("SCENARIOS.md")
    if not errors:
        errors += run_python_examples("ANALYTICS.md")
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
