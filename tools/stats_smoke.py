#!/usr/bin/env python
"""CI smoke: the traffic-matrix analytics path through the real CLI.

Runs the stats subsystem's acceptance differential as child processes
of the actual CLI — no test harness, no in-process shortcuts:

* ``generate`` + ``archive build`` produce a multi-segment archive,
* ``stats --json`` via the index fast path and via ``--method decode``
  must emit **identical window tables** (the fast path never touches a
  packet; the decode path synthesizes every one),
* a time-bounded request must prune segments (``segments_pruned > 0``,
  strictly fewer decoded than total),
* ``REPRO_NO_SCIPY=1`` must reproduce the scipy run's document exactly
  (the pure-python statistics engine is not an approximation),
* ``--anonymize-key`` must mask addresses while preserving structure,
* ``query --stats`` and ``archive info --windows`` must render their
  tables.

Pure stdlib; run from the repository root::

    PYTHONPATH=src python tools/stats_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
DURATION = "12"
RATE = "30"
SEED = "3"
SEGMENT_SPAN = "3"
SCHEMA = "repro.analysis/matrix-report/v1"


def _env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else SRC
    )
    env.update(extra)
    return env


def _cli(*args: str, env: dict | None = None) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env or _env(),
        capture_output=True,
        text=True,
        timeout=300,
    )


def _check(proc: subprocess.CompletedProcess, what: str) -> str:
    if proc.returncode != 0:
        print(f"FAIL: {what} exited {proc.returncode}", file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {what}")
    return proc.stdout


def _report(*args: str, env: dict | None = None) -> dict:
    out = _check(_cli(*args, env=env), " ".join(args))
    document = json.loads(out)
    if document.get("schema") != SCHEMA:
        print(f"FAIL: unexpected schema {document.get('schema')}", file=sys.stderr)
        raise SystemExit(1)
    return document


def smoke(workdir: Path) -> None:
    trace = workdir / "day.tsh"
    archive = workdir / "day.fctca"
    _check(
        _cli("generate", str(trace), "--duration", DURATION, "--rate", RATE,
             "--seed", SEED),
        "generate",
    )
    _check(
        _cli("archive", "build", str(archive), str(trace),
             "--segment-span", SEGMENT_SPAN),
        "archive build",
    )

    # The acceptance differential: identical statistics, less work.
    by_index = _report("stats", str(archive), "--window", SEGMENT_SPAN, "--json")
    by_decode = _report(
        "stats", str(archive), "--window", SEGMENT_SPAN, "--json",
        "--method", "decode",
    )
    if by_index["windows"] != by_decode["windows"]:
        print("FAIL: index and decode window tables differ", file=sys.stderr)
        raise SystemExit(1)
    if (by_index["method"], by_decode["method"]) != ("index", "decode"):
        print("FAIL: method labels are off", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: index == decode across {len(by_index['windows'])} windows")

    bounded = _report(
        "stats", str(archive), "--window", SEGMENT_SPAN,
        "--since", "3", "--until", "6", "--json",
    )
    if not (
        bounded["segments_pruned"] > 0
        and bounded["segments_decoded"] < bounded["segments_total"]
    ):
        print(f"FAIL: no pruning on a bounded range: {bounded}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"ok: bounded range decoded {bounded['segments_decoded']}"
        f"/{bounded['segments_total']} segments"
    )

    # The pure-python engine must reproduce the scipy document exactly.
    no_scipy = _report(
        "stats", str(archive), "--window", SEGMENT_SPAN, "--json",
        env=_env(REPRO_NO_SCIPY="1"),
    )
    if no_scipy.pop("engine") != "python":
        print("FAIL: REPRO_NO_SCIPY did not select the python engine",
              file=sys.stderr)
        raise SystemExit(1)
    # Identical document up to the engine label that records the choice.
    if no_scipy != {k: v for k, v in by_index.items() if k != "engine"}:
        print("FAIL: REPRO_NO_SCIPY changed the report", file=sys.stderr)
        raise SystemExit(1)
    print("ok: scipy and pure-python engines emit identical documents")

    masked = _report(
        "stats", str(archive), "--window", SEGMENT_SPAN, "--json",
        "--anonymize-key", "secret",
    )
    if not masked["anonymized"] or masked["flows"] != by_index["flows"]:
        print("FAIL: anonymized report lost structure", file=sys.stderr)
        raise SystemExit(1)
    if masked["windows"][0]["top_links_packets"] == (
        by_index["windows"][0]["top_links_packets"]
    ):
        print("FAIL: anonymization left addresses visible", file=sys.stderr)
        raise SystemExit(1)
    print("ok: anonymization masks addresses, preserves structure")

    query = _check(
        _cli("query", str(archive), "--since", "3", "--until", "6", "--stats"),
        "query --stats",
    )
    for needle in ("matched flows", "max fan-out/in", "segments decoded"):
        if needle not in query:
            print(f"FAIL: query --stats output lacks {needle!r}", file=sys.stderr)
            raise SystemExit(1)

    info = _check(
        _cli("archive", "info", str(archive), "--windows", "4"),
        "archive info --windows",
    )
    if "window probe" not in info or "flows<=" not in info:
        print("FAIL: window probe table missing", file=sys.stderr)
        raise SystemExit(1)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="stats-smoke-") as workdir:
        smoke(Path(workdir))
    print("stats smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
