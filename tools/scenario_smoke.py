#!/usr/bin/env python
"""CI smoke: one scenario end to end through the real CLI.

Runs the full operator pipeline for one (or every) registered traffic
scenario as child processes of the actual CLI — no test harness, no
in-process shortcuts:

* ``generate --scenario NAME`` writes the workload as TSH,
* determinism: a second generation with the same seed is file-identical,
* ``compress`` / ``decompress`` roundtrips it (packet count preserved),
* ``fidelity --scenario NAME`` scores the roundtrip and the written
  report parses with the expected schema and a zero flow-size KS.

Pure stdlib; run from the repository root::

    PYTHONPATH=src python tools/scenario_smoke.py [scenario ...]

With no arguments every registered scenario is smoked (CI fans the
names out as a job matrix instead, one scenario per job).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
DURATION = "3"
RATE = "24"
SEED = "7"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else SRC
    )
    return env


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )


def _check(proc: subprocess.CompletedProcess, what: str) -> None:
    if proc.returncode != 0:
        print(f"FAIL: {what} exited {proc.returncode}", file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {what}")


def _packet_count(tsh_path: Path) -> int:
    # TSH is exactly 44 bytes per packet, no file header.
    size = tsh_path.stat().st_size
    if size % 44:
        print(f"FAIL: {tsh_path} is not a whole number of TSH records")
        raise SystemExit(1)
    return size // 44


def smoke(name: str, workdir: Path) -> None:
    trace = workdir / f"{name}.tsh"
    again = workdir / f"{name}-again.tsh"
    container = workdir / f"{name}.fctc"
    restored = workdir / f"{name}-restored.tsh"
    report = workdir / f"{name}-fidelity.json"
    base = ["--duration", DURATION, "--rate", RATE, "--seed", SEED]

    _check(
        _cli("generate", str(trace), "--scenario", name, *base),
        f"{name}: generate",
    )
    _check(
        _cli("generate", str(again), "--scenario", name, *base),
        f"{name}: regenerate",
    )
    if trace.read_bytes() != again.read_bytes():
        print(f"FAIL: {name}: generation is not deterministic per seed")
        raise SystemExit(1)
    print(f"ok: {name}: deterministic ({_packet_count(trace)} packets)")

    _check(_cli("compress", str(trace), str(container)), f"{name}: compress")
    _check(
        _cli("decompress", str(container), str(restored)),
        f"{name}: decompress",
    )
    if _packet_count(restored) != _packet_count(trace):
        print(f"FAIL: {name}: roundtrip changed the packet count")
        raise SystemExit(1)

    _check(
        _cli(
            "fidelity",
            "--scenario",
            name,
            "--duration",
            DURATION,
            "--rate",
            RATE,
            "--out",
            str(report),
        ),
        f"{name}: fidelity",
    )
    document = json.loads(report.read_text(encoding="utf-8"))
    if document.get("schema") != "repro.analysis/fidelity-report/v1":
        print(f"FAIL: {name}: unexpected fidelity schema")
        raise SystemExit(1)
    (scored,) = document["scenarios"]
    if scored["scenario"] != name or scored["flow_size_ks"] != 0.0:
        print(f"FAIL: {name}: fidelity report is off: {scored}")
        raise SystemExit(1)
    print(f"ok: {name}: fidelity ratio={scored['ratio']:.4f}")


def main(argv: list[str]) -> int:
    if argv:
        names = argv
    else:
        sys.path.insert(0, SRC)
        from repro.synth.scenarios import scenario_names

        names = list(scenario_names())
    with tempfile.TemporaryDirectory(prefix="scenario-smoke-") as workdir:
        for name in names:
            smoke(name, Path(workdir))
    print(f"scenario smoke: {len(names)} scenario(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
