#!/usr/bin/env python
"""Headless smoke-run of every ``examples/*.py`` script.

The CI ``examples`` job runs this with two hard rules:

1. **Tiny inputs** — ``REPRO_EXAMPLES_QUICK=1`` is exported, which every
   example honors by shrinking its synthetic workload; the whole sweep
   stays in CI-smoke territory.
2. **No deprecation leaks** — each example runs under
   ``-W error::DeprecationWarning``, so an example (or any *internal*
   ``repro`` code it exercises) that still routes through a 1.1
   deprecation shim fails the build.  Examples are the reference façade
   callers; they must be warning-clean.

Pure stdlib, exits non-zero on the first failing example.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
PER_EXAMPLE_TIMEOUT = 600  # seconds; quick mode finishes far below this


def main() -> int:
    if not EXAMPLES:
        print("ERROR: no examples found", file=sys.stderr)
        return 1
    env = dict(os.environ)
    env["REPRO_EXAMPLES_QUICK"] = "1"
    env["PYTHONPATH"] = (
        f"{REPO / 'src'}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(REPO / "src")
    )
    failures = 0
    for example in EXAMPLES:
        started = time.monotonic()
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", str(example)],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            timeout=PER_EXAMPLE_TIMEOUT,
        )
        elapsed = time.monotonic() - started
        if proc.returncode != 0:
            failures += 1
            print(f"FAIL  {example.name} ({elapsed:.1f}s)")
            sys.stderr.write(proc.stdout[-2000:])
            sys.stderr.write(proc.stderr[-4000:])
        else:
            print(f"ok    {example.name} ({elapsed:.1f}s)")
    print(f"{len(EXAMPLES) - failures}/{len(EXAMPLES)} examples passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
