#!/usr/bin/env python
"""CI smoke for the ingest daemon: one bounded end-to-end pass.

Generates a synthetic capture, starts ``repro serve`` as a real child
process with a unix-socket source and a tail source, streams the
capture in over both, signals SIGTERM, and then verifies the sealed
archive the way an operator would:

* the daemon exits 0 with a clean drain and the expected packet total,
* ``repro-trace archive info`` reads the output (format unchanged),
* a time-bounded ``repro-trace query`` prunes segments — i.e. the
  per-segment time index the daemon wrote is actually useful.

Every wait is deadline-bounded (``TIMEOUT`` seconds overall budget per
step), so a hung daemon fails the job instead of wedging it.  Pure
stdlib; run from the repository root::

    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
TIMEOUT = 60.0
FRAME = struct.Struct(">I")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{env['PYTHONPATH']}" if env.get("PYTHONPATH") else SRC
    )
    return env


def _cli(*args: str, **kwargs) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=TIMEOUT,
        **kwargs,
    )


def _wait_for(path: str) -> None:
    deadline = time.monotonic() + TIMEOUT
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            raise TimeoutError(f"{path} never appeared")
        time.sleep(0.02)


def _send_framed(sock_path: str, data: bytes) -> None:
    _wait_for(sock_path)
    client = socket.socket(socket.AF_UNIX)
    try:
        client.connect(sock_path)
        step = 9973
        for start in range(0, len(data), step):
            payload = data[start : start + step]
            client.sendall(FRAME.pack(len(payload)) + payload)
        client.sendall(FRAME.pack(0))  # end of stream
    finally:
        client.close()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        directory = Path(tmp)
        capture = directory / "capture.tsh"
        generate = _cli(
            "generate", str(capture), "--duration", "8", "--seed", "7"
        )
        if generate.returncode != 0:
            print(generate.stderr, file=sys.stderr)
            print("FAIL: workload generation")
            return 1
        data = capture.read_bytes()
        packets = len(data) // 44
        half = (packets // 2) * 44

        sock = str(directory / "ingest.sock")
        tail = directory / "grow.tsh"
        tail.write_bytes(b"")
        archive = directory / "live.fctca"
        report_path = directory / "run.json"

        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(archive),
                "--source",
                f"unix:{sock}",
                "--source",
                f"tail:{tail}",
                "--segment-span",
                "2",
                "--tail-poll",
                "0.05",
                "--drain-timeout",
                "30",
                "--metrics-out",
                str(report_path),
            ],
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            _send_framed(sock, data[:half])
            tail.write_bytes(data[half:])
            time.sleep(0.5)  # two tail polls: the growth gets ingested
            daemon.send_signal(signal.SIGTERM)
            stdout, stderr = daemon.communicate(timeout=TIMEOUT)
        except Exception:
            daemon.kill()
            daemon.communicate()
            raise

        print(stdout.rstrip())
        if daemon.returncode != 0:
            print(stderr, file=sys.stderr)
            print(f"FAIL: daemon exited {daemon.returncode}")
            return 1
        if "drain: clean" not in stdout:
            print("FAIL: drain was cut")
            return 1
        if "sealed" not in stdout or f"{packets} packets" not in stdout:
            print(f"FAIL: expected {packets} ingested packets")
            return 1

        counters = json.loads(report_path.read_text())["counters"]
        for name in ("serve.source.unix0.packets", "serve.source.tail1.packets"):
            if counters.get(name, 0) <= 0:
                print(f"FAIL: counter {name} missing from the run report")
                return 1

        info = _cli("archive", "info", str(archive))
        if info.returncode != 0 or "segment" not in info.stdout:
            print(info.stderr, file=sys.stderr)
            print("FAIL: archive info cannot read the daemon's output")
            return 1

        query_report = directory / "query.json"
        query = _cli(
            "query",
            str(archive),
            "--since",
            "0.5",
            "--until",
            "1.5",
            "--metrics-out",
            str(query_report),
        )
        if query.returncode != 0:
            print(query.stderr, file=sys.stderr)
            print("FAIL: query on the live archive")
            return 1
        query_counters = json.loads(query_report.read_text())["counters"]
        if query_counters.get("query.segments_pruned", 0) < 1:
            print("FAIL: time-bounded query pruned no segments")
            return 1

        print(
            f"OK: {packets} packets over 2 sources, "
            f"{counters.get('serve.segments', 0)} segments, archive info + "
            f"query pruning verified"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
